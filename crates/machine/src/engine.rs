//! The micro-engine: executes micro-ops from the control store.
//!
//! One `match` arm per [`MicroOp`]. Cycle accounting: memory micro-ops
//! cost 2 microcycles, PTE-walk reads 2 each, everything else 1 — a
//! deliberately simple model, but patched-vs-stock *ratios* (the paper's
//! slowdown numbers) are insensitive to the absolute constants.

use crate::mmu::{self, AccessKind};
use crate::Machine;
use atum_arch::exc::{ArithKind, ScbVector, IPL_TIMER};
use atum_arch::mem::PAGE_OFFSET_MASK;
use atum_arch::{DataSize, Exception, ExceptionClass, PrivReg, Psl, Region, VirtAddr, PAGE_SIZE};
use atum_ucode::{
    AluOp, CcEffect, Entry, FaultKind, MicroCond, MicroOp, MicroReg, RefClass, SizeSel, Target,
};

/// Maximum micro-subroutine nesting.
const MICRO_STACK_LIMIT: usize = 64;

/// How a [`Machine::run`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// The `halt` micro-op executed (HALT instruction, or a patch halting
    /// for host service, e.g. trace-buffer full).
    Halted,
    /// The cycle budget ran out.
    CycleLimit,
    /// Unrecoverable: a third nested exception during exception entry.
    TripleFault,
    /// Unrecoverable micro-architecture error (bad microcode).
    MicroError(&'static str),
}

impl std::fmt::Display for RunExit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunExit::Halted => f.write_str("halted"),
            RunExit::CycleLimit => f.write_str("cycle limit reached"),
            RunExit::TripleFault => f.write_str("triple fault"),
            RunExit::MicroError(m) => write!(f, "micro-architecture error: {m}"),
        }
    }
}

/// Reference and event counters — the "hardware monitor" view used by the
/// slowdown and completeness accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefCounts {
    /// Instruction-stream longword fetches.
    pub ifetch: u64,
    /// Data reads.
    pub data_reads: u64,
    /// Data writes.
    pub data_writes: u64,
    /// PTE reads performed by the hardware walker.
    pub pte_reads: u64,
    /// Exceptions taken (faults and traps).
    pub exceptions: u64,
    /// Interrupts delivered.
    pub interrupts: u64,
}

impl RefCounts {
    /// Total architectural memory references (I + D).
    pub fn total_refs(&self) -> u64 {
        self.ifetch + self.data_reads + self.data_writes
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AluFlags {
    z: bool,
    n: bool,
    c: bool,
    v: bool,
    divz: bool,
}

impl Machine {
    /// Executes micro-ops until halt, a fatal condition, or `max_cycles`
    /// additional microcycles have elapsed.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        let deadline = self.cycles.saturating_add(max_cycles);
        loop {
            if self.halted {
                return RunExit::Halted;
            }
            if self.cycles >= deadline {
                return RunExit::CycleLimit;
            }
            if let Some(exit) = self.step_micro() {
                if exit == RunExit::Halted {
                    self.halted = true;
                }
                return exit;
            }
        }
    }

    /// Runs until `n` more architectural instructions complete (or another
    /// exit happens first). Returns the exit if one occurred.
    pub fn step_insns(&mut self, n: u64, max_cycles: u64) -> Option<RunExit> {
        let target = self.insns + n;
        let deadline = self.cycles.saturating_add(max_cycles);
        while self.insns < target {
            if self.halted {
                return Some(RunExit::Halted);
            }
            if self.cycles >= deadline {
                return Some(RunExit::CycleLimit);
            }
            if let Some(exit) = self.step_micro() {
                if exit == RunExit::Halted {
                    self.halted = true;
                }
                return Some(exit);
            }
        }
        None
    }

    /// Executes one micro-op. Returns `Some` on halt/fatal.
    fn step_micro(&mut self) -> Option<RunExit> {
        if self.upc >= self.cs.len() {
            return Some(RunExit::MicroError("micro-PC outside control store"));
        }
        let op = self.cs.word(self.upc);
        self.upc += 1;
        self.cycles += 1;
        match op {
            MicroOp::Mov { src, dst } => {
                let v = self.read_src(src);
                self.write_dst(dst, v);
            }
            MicroOp::Alu {
                op,
                a,
                b,
                dst,
                cc,
                size,
            } => {
                let av = self.read_src(a);
                let bv = self.read_src(b);
                let (result, flags) = alu_exec(op, av, bv, size);
                self.regs.uflags = crate::regs::UFlags {
                    z: flags.z,
                    n: flags.n,
                    c: flags.c,
                    v: flags.v,
                    divz: flags.divz,
                };
                self.apply_cc(cc, flags);
                self.write_dst(dst, result);
            }
            MicroOp::SetSize(s) => self.regs.osize = s,
            MicroOp::SetSizeDyn(r) => {
                let v = self.read_src(r);
                self.regs.osize = match v {
                    1 => DataSize::Byte,
                    2 => DataSize::Word,
                    4 => DataSize::Long,
                    _ => return Some(RunExit::MicroError("bad dynamic size latch")),
                };
            }
            MicroOp::Read { class, size } => {
                self.cycles += 1;
                let size = self.sel_size(size);
                if let Err(e) = self.vread(size, class) {
                    if let Err(x) = self.enter_exception(e) {
                        return Some(x);
                    }
                }
            }
            MicroOp::Write { size } => {
                self.cycles += 1;
                let size = self.sel_size(size);
                if let Err(e) = self.vwrite(size) {
                    if let Err(x) = self.enter_exception(e) {
                        return Some(x);
                    }
                }
            }
            MicroOp::PhysRead => {
                self.cycles += 1;
                match self.mem.read_le(self.regs.mar, 4) {
                    Some(v) => self.regs.mdr = v,
                    None => {
                        if let Err(x) = self.enter_exception(Exception::MachineCheck) {
                            return Some(x);
                        }
                    }
                }
            }
            MicroOp::PhysWrite => {
                self.cycles += 1;
                let v = self.regs.mdr;
                if self.mem.write_le(self.regs.mar, 4, v).is_none() {
                    if let Err(x) = self.enter_exception(Exception::MachineCheck) {
                        return Some(x);
                    }
                }
            }
            MicroOp::Jump(t) => self.upc = self.resolve(t),
            MicroOp::JumpIf { cond, target } => {
                if self.cond(cond) {
                    self.upc = self.resolve(target);
                }
            }
            MicroOp::Call(t) => {
                if self.ustack.len() >= MICRO_STACK_LIMIT {
                    return Some(RunExit::MicroError("micro-stack overflow"));
                }
                self.ustack.push(self.upc);
                self.upc = self.resolve(t);
            }
            MicroOp::Ret => match self.ustack.pop() {
                Some(addr) => self.upc = addr,
                None => return Some(RunExit::MicroError("micro-stack underflow")),
            },
            MicroOp::DispatchOpcode => {
                self.upc = self.cs.opcode_target(self.regs.opreg as u8);
            }
            MicroOp::DispatchSpec(table) => {
                self.upc = self.cs.spec_target(table, (self.regs.spec >> 4) as u8);
            }
            MicroOp::DecodeNext => return self.boundary(),
            MicroOp::AdvancePc => {
                self.log_gpr(15);
                self.regs.gpr[15] = self.regs.gpr[15].wrapping_add(1);
            }
            MicroOp::Fault(kind) => {
                let exc = self.fault_to_exception(kind);
                if let Err(x) = self.enter_exception(exc) {
                    return Some(x);
                }
            }
            MicroOp::ReadPr { num, dst } => {
                let n = self.read_src(num);
                match self.read_prv_dyn(n) {
                    Ok(v) => self.write_dst(dst, v),
                    Err(e) => {
                        if let Err(x) = self.enter_exception(e) {
                            return Some(x);
                        }
                    }
                }
            }
            MicroOp::WritePr { num, src } => {
                let n = self.read_src(num);
                let v = self.read_src(src);
                match PrivReg::from_number(n) {
                    Some(reg) => self.write_prv_internal(reg, v),
                    None => {
                        if let Err(x) = self.enter_exception(Exception::ReservedOperand) {
                            return Some(x);
                        }
                    }
                }
            }
            MicroOp::TbFlushAll => self.tlb.flush_all(),
            MicroOp::TbFlushProc => self.tlb.flush_process(),
            MicroOp::Halt => return Some(RunExit::Halted),
        }
        None
    }

    fn sel_size(&self, sel: SizeSel) -> DataSize {
        match sel {
            SizeSel::Fixed(s) => s,
            SizeSel::OSize => self.regs.osize,
        }
    }

    fn resolve(&self, t: Target) -> u32 {
        match t {
            Target::Abs(a) => a,
            Target::Entry(e) => self.cs.entry(e),
        }
    }

    pub(crate) fn read_src(&mut self, r: MicroReg) -> u32 {
        match r {
            MicroReg::Gpr(n) => self.regs.gpr[(n & 0xF) as usize],
            MicroReg::T(n) => self.regs.t[(n & 0xF) as usize],
            MicroReg::P(n) => self.regs.p[(n & 0x7) as usize],
            MicroReg::Mar => self.regs.mar,
            MicroReg::Mdr => self.regs.mdr,
            MicroReg::Psl => self.regs.psl.bits(),
            MicroReg::Spec => self.regs.spec,
            MicroReg::OpReg => self.regs.opreg,
            MicroReg::RegNum => self.regs.regnum,
            MicroReg::GprIdx => self.regs.gpr[(self.regs.regnum & 0xF) as usize],
            MicroReg::OSizeBytes => self.regs.osize.bytes(),
            MicroReg::OSizeMask => self.regs.osize.mask(),
            MicroReg::IbData => self.regs.ibdata,
            MicroReg::IbCnt => self.regs.ibcnt,
            MicroReg::ExcVec => self.regs.excvec,
            MicroReg::ExcParam => self.regs.excparam,
            MicroReg::ExcFlags => self.regs.excflags,
            MicroReg::ExcPc => self.regs.excpc,
            MicroReg::ExcIpl => self.regs.excipl,
            MicroReg::Imm(v) => v,
        }
    }

    pub(crate) fn write_dst(&mut self, r: MicroReg, v: u32) {
        match r {
            MicroReg::Gpr(n) => {
                let n = (n & 0xF) as usize;
                self.log_gpr(n as u8);
                self.regs.gpr[n] = v;
                if n == 15 {
                    self.regs.ibcnt = 0;
                }
            }
            MicroReg::GprIdx => {
                let n = (self.regs.regnum & 0xF) as usize;
                self.log_gpr(n as u8);
                self.regs.gpr[n] = v;
                if n == 15 {
                    self.regs.ibcnt = 0;
                }
            }
            MicroReg::T(n) => self.regs.t[(n & 0xF) as usize] = v,
            MicroReg::P(n) => self.regs.p[(n & 0x7) as usize] = v,
            MicroReg::Mar => self.regs.mar = v,
            MicroReg::Mdr => self.regs.mdr = v,
            MicroReg::Psl => self.regs.psl = Psl::from_bits(v),
            MicroReg::Spec => self.regs.spec = v & 0xFF,
            MicroReg::OpReg => self.regs.opreg = v & 0xFF,
            MicroReg::RegNum => self.regs.regnum = v & 0xF,
            MicroReg::IbData => self.regs.ibdata = v,
            MicroReg::IbCnt => self.regs.ibcnt = v,
            MicroReg::ExcVec => self.regs.excvec = v,
            MicroReg::ExcParam => self.regs.excparam = v,
            MicroReg::ExcFlags => self.regs.excflags = v,
            MicroReg::ExcPc => self.regs.excpc = v,
            MicroReg::ExcIpl => self.regs.excipl = v,
            MicroReg::Imm(_) | MicroReg::OSizeBytes | MicroReg::OSizeMask => {
                debug_assert!(false, "write to read-only micro-register {r}");
            }
        }
    }

    fn log_gpr(&mut self, n: u8) {
        let bit = 1u16 << n;
        if self.rlog_mask & bit == 0 {
            self.rlog_mask |= bit;
            self.rlog.push((n, self.regs.gpr[n as usize]));
        }
    }

    fn rollback(&mut self) {
        while let Some((n, old)) = self.rlog.pop() {
            self.regs.gpr[n as usize] = old;
        }
        self.rlog_mask = 0;
        self.regs.psl = self.psl_at_start;
        self.regs.ibcnt = 0;
    }

    fn apply_cc(&mut self, cc: CcEffect, f: AluFlags) {
        let psl = &mut self.regs.psl;
        match cc {
            CcEffect::None => {}
            CcEffect::Logic => {
                psl.set_n(f.n);
                psl.set_z(f.z);
                psl.set_v(false);
            }
            CcEffect::Test => {
                psl.set_n(f.n);
                psl.set_z(f.z);
                psl.set_v(false);
                psl.set_c(false);
            }
            CcEffect::Arith => {
                psl.set_cc(f.n, f.z, f.v, f.c);
            }
            // VAX CMP semantics: N is the *signed comparison* outcome
            // (sign of the subtraction corrected for overflow), V is
            // cleared, C is the unsigned comparison. This is what makes
            // `blss` after `cmpl` correct even when a-b overflows.
            CcEffect::Cmp => {
                psl.set_cc(f.n != f.v, f.z, false, f.c);
            }
        }
    }

    fn cond(&self, c: MicroCond) -> bool {
        let f = self.regs.uflags;
        let psl = self.regs.psl;
        match c {
            MicroCond::UZero => f.z,
            MicroCond::UNotZero => !f.z,
            MicroCond::UNeg => f.n,
            MicroCond::UPos => !f.n,
            MicroCond::UCarry => f.c,
            MicroCond::UNoCarry => !f.c,
            MicroCond::UOvf => f.v,
            MicroCond::UDivZero => f.divz,
            MicroCond::USLess => f.n != f.v,
            MicroCond::USLeq => (f.n != f.v) || f.z,
            MicroCond::RegNumIsPc => self.regs.regnum & 0xF == 15,
            MicroCond::UserMode => !psl.is_kernel(),
            MicroCond::KernelMode => psl.is_kernel(),
            MicroCond::ArchEql => psl.z(),
            MicroCond::ArchNeq => !psl.z(),
            MicroCond::ArchGtr => !(psl.n() || psl.z()),
            MicroCond::ArchLeq => psl.n() || psl.z(),
            MicroCond::ArchGeq => !psl.n(),
            MicroCond::ArchLss => psl.n(),
            MicroCond::ArchGtru => !(psl.c() || psl.z()),
            MicroCond::ArchLequ => psl.c() || psl.z(),
            MicroCond::ArchVs => psl.v(),
            MicroCond::ArchVc => !psl.v(),
            MicroCond::ArchCs => psl.c(),
            MicroCond::ArchCc => !psl.c(),
        }
    }

    fn fault_to_exception(&self, kind: FaultKind) -> Exception {
        match kind {
            FaultKind::ReservedInstruction => Exception::ReservedInstruction,
            FaultKind::ReservedOperand => Exception::ReservedOperand,
            FaultKind::ReservedAddrMode => Exception::ReservedAddrMode,
            FaultKind::Privileged => Exception::PrivilegedInstruction,
            FaultKind::Arithmetic => Exception::Arithmetic(match self.regs.excparam {
                1 => ArithKind::Overflow,
                _ => ArithKind::DivideByZero,
            }),
            FaultKind::Chmk => Exception::Chmk(self.regs.excparam as u16),
            FaultKind::Breakpoint => Exception::Breakpoint,
        }
    }

    /// Enters the exception micro-flow.
    ///
    /// # Errors
    ///
    /// Returns `Err(RunExit::TripleFault)` on a third nested exception.
    fn enter_exception(&mut self, exc: Exception) -> Result<(), RunExit> {
        self.counts.exceptions += 1;
        if self.exc_depth >= 2 {
            return Err(RunExit::TripleFault);
        }
        let exc = if self.exc_depth == 1 {
            Exception::MachineCheck
        } else {
            exc
        };
        self.exc_depth += 1;
        if exc.class() == ExceptionClass::Fault {
            self.rollback();
        }
        self.regs.excvec = exc.vector();
        let (param, has_param) = match exc.parameter() {
            Some(p) => (p, 1),
            None => (0, 0),
        };
        self.regs.excparam = param;
        self.regs.excflags = has_param;
        self.regs.excpc = if exc.class() == ExceptionClass::Fault {
            self.insn_pc
        } else {
            self.regs.gpr[15]
        };
        self.regs.ibcnt = 0;
        self.ustack.clear();
        self.upc = self.cs.entry(Entry::ExcDispatch);
        Ok(())
    }

    fn enter_interrupt(&mut self, vector: u32, ipl: u8) {
        self.counts.interrupts += 1;
        self.exc_depth = 1;
        self.regs.excvec = vector;
        self.regs.excparam = 0;
        self.regs.excflags = 2;
        self.regs.excipl = ipl as u32;
        self.regs.excpc = self.regs.gpr[15];
        self.regs.ibcnt = 0;
        self.ustack.clear();
        self.upc = self.cs.entry(Entry::ExcDispatch);
    }

    /// Instruction-boundary duties (the `DecodeNext` micro-op).
    fn boundary(&mut self) -> Option<RunExit> {
        self.exc_depth = 0;
        self.rlog.clear();
        self.rlog_mask = 0;
        self.insns += 1;
        self.ustack.clear();

        // Trace (T-bit) trap sequencing: TP set at the start of a traced
        // instruction fires here, before anything else.
        if self.regs.psl.tp() {
            let mut psl = self.regs.psl;
            psl.set_tp(false);
            self.regs.psl = psl;
            self.psl_at_start = psl;
            self.insn_pc = self.regs.gpr[15];
            if let Err(x) = self.enter_exception(Exception::TraceTrap) {
                return Some(x);
            }
            return None;
        }
        if self.regs.psl.t() {
            let mut psl = self.regs.psl;
            psl.set_tp(true);
            self.regs.psl = psl;
        }

        // Interval timer.
        if self.prv.iccs & 1 != 0 && self.cycles >= self.timer_deadline {
            self.timer_pending = true;
            self.prv.iccs |= 0x80;
            let icr = self.prv.icr.max(1) as u64;
            self.timer_deadline = self.cycles + icr;
        }

        // Interrupt arbitration, highest IPL first.
        let cur_ipl = self.regs.psl.ipl();
        if self.timer_pending && self.prv.iccs & 0x40 != 0 && IPL_TIMER > cur_ipl {
            self.timer_pending = false;
            self.prv.iccs &= !0x80;
            self.insn_pc = self.regs.gpr[15];
            self.psl_at_start = self.regs.psl;
            self.enter_interrupt(ScbVector::IntervalTimer.offset(), IPL_TIMER);
            return None;
        }
        if self.prv.sisr != 0 {
            let level = 31 - self.prv.sisr.leading_zeros();
            if level as u8 > cur_ipl && (1..=15).contains(&level) {
                self.prv.sisr &= !(1 << level);
                self.insn_pc = self.regs.gpr[15];
                self.psl_at_start = self.regs.psl;
                self.enter_interrupt(ScbVector::software(level as u8), level as u8);
                return None;
            }
        }

        self.insn_pc = self.regs.gpr[15];
        self.psl_at_start = self.regs.psl;
        self.upc = self.cs.entry(Entry::Fetch);
        None
    }

    // ── Virtual memory ────────────────────────────────────────────────

    fn vread(&mut self, size: DataSize, class: RefClass) -> Result<(), Exception> {
        match class {
            RefClass::IFetch => self.counts.ifetch += 1,
            _ => self.counts.data_reads += 1,
        }
        let va = self.regs.mar;
        let n = size.bytes();
        if self.prv.mapen == 0 {
            self.regs.mdr = self
                .mem
                .read_le(va, n)
                .ok_or(Exception::TranslationInvalid(VirtAddr(va)))?;
            return Ok(());
        }
        if (va & PAGE_OFFSET_MASK) + n <= PAGE_SIZE {
            let pa = self.translate(va, AccessKind::Read)?;
            self.regs.mdr = self.mem.read_le(pa, n).ok_or(Exception::MachineCheck)?;
        } else {
            let mut v = 0u32;
            for i in 0..n {
                let pa = self.translate(va.wrapping_add(i), AccessKind::Read)?;
                let b = self.mem.read_u8(pa).ok_or(Exception::MachineCheck)?;
                v |= (b as u32) << (8 * i);
            }
            self.regs.mdr = v;
        }
        Ok(())
    }

    fn vwrite(&mut self, size: DataSize) -> Result<(), Exception> {
        self.counts.data_writes += 1;
        let va = self.regs.mar;
        let v = self.regs.mdr;
        let n = size.bytes();
        if self.prv.mapen == 0 {
            self.mem
                .write_le(va, n, v)
                .ok_or(Exception::TranslationInvalid(VirtAddr(va)))?;
            return Ok(());
        }
        if (va & PAGE_OFFSET_MASK) + n <= PAGE_SIZE {
            let pa = self.translate(va, AccessKind::Write)?;
            self.mem.write_le(pa, n, v).ok_or(Exception::MachineCheck)?;
        } else {
            // Translate both pages first so a fault can't leave a torn
            // write behind.
            for i in 0..n {
                self.translate(va.wrapping_add(i), AccessKind::Write)?;
            }
            for i in 0..n {
                let pa = self.translate(va.wrapping_add(i), AccessKind::Write)?;
                self.mem
                    .write_u8(pa, (v >> (8 * i)) as u8)
                    .ok_or(Exception::MachineCheck)?;
            }
        }
        Ok(())
    }

    fn region_base_len(&self, region: Region) -> (u32, u32) {
        match region {
            Region::P0 => (self.prv.p0br, self.prv.p0lr),
            Region::P1 => (self.prv.p1br, self.prv.p1lr),
            Region::System => (self.prv.sbr, self.prv.slr),
            Region::Reserved => (0, 0),
        }
    }

    pub(crate) fn translate(&mut self, va: u32, kind: AccessKind) -> Result<u32, Exception> {
        let vaddr = VirtAddr(va);
        let gvpn = vaddr.global_vpn();
        let mode = self.regs.psl.mode();
        let mut pte = match self.tlb.lookup(gvpn) {
            Some(p) => p,
            None => {
                let bl = (
                    self.region_base_len(Region::P0),
                    self.region_base_len(Region::P1),
                    self.region_base_len(Region::System),
                );
                let mem = &self.mem;
                let r = mmu::walk(
                    vaddr,
                    |region| match region {
                        Region::P0 => bl.0,
                        Region::P1 => bl.1,
                        Region::System => bl.2,
                        Region::Reserved => (0, 0),
                    },
                    |pa| mem.read_le(pa, 4),
                )?;
                self.counts.pte_reads += r.pte_reads as u64;
                self.cycles += 2 * r.pte_reads as u64;
                self.tlb
                    .insert(gvpn, r.pte, vaddr.region().is_per_process());
                r.pte
            }
        };
        mmu::check_access(pte, kind, mode, vaddr)?;
        if kind == AccessKind::Write && !pte.modified() {
            pte = pte.with_modified();
            let (base, _) = self.region_base_len(vaddr.region());
            let pte_pa = base.wrapping_add(vaddr.vpn() * 4);
            self.mem.write_le(pte_pa, 4, pte.0);
            self.tlb.update(gvpn, pte);
        }
        let pa = pte.frame_base() + vaddr.offset();
        if !self.mem.contains(pa, 1) {
            return Err(Exception::MachineCheck);
        }
        Ok(pa)
    }

    // ── Privileged registers ──────────────────────────────────────────

    fn read_prv_dyn(&mut self, num: u32) -> Result<u32, Exception> {
        let reg = PrivReg::from_number(num).ok_or(Exception::ReservedOperand)?;
        Ok(match reg {
            PrivReg::Rxdb => self.console_in.pop_front().map_or(0, u32::from),
            PrivReg::Rxcs => {
                if self.console_in.is_empty() {
                    0
                } else {
                    0x80
                }
            }
            _ => self.prv.read(reg, &self.regs),
        })
    }

    pub(crate) fn write_prv_internal(&mut self, reg: PrivReg, v: u32) {
        match reg {
            PrivReg::Ksp => self.prv.ksp = v,
            PrivReg::Usp => self.prv.usp = v,
            PrivReg::P0br => self.prv.p0br = v,
            PrivReg::P0lr => self.prv.p0lr = v,
            PrivReg::P1br => self.prv.p1br = v,
            PrivReg::P1lr => self.prv.p1lr = v,
            PrivReg::Sbr => self.prv.sbr = v,
            PrivReg::Slr => self.prv.slr = v,
            PrivReg::Pcbb => self.prv.pcbb = v,
            PrivReg::Scbb => self.prv.scbb = v,
            PrivReg::Ipl => self.regs.psl.set_ipl((v & 31) as u8),
            PrivReg::Sirr => {
                if (1..=15).contains(&v) {
                    self.prv.sisr |= 1 << v;
                }
            }
            PrivReg::Sisr => self.prv.sisr = v & 0xFFFE,
            PrivReg::Iccs => {
                if v & 0x80 != 0 {
                    self.prv.iccs &= !0x80;
                    self.timer_pending = false;
                }
                let was_running = self.prv.iccs & 1 != 0;
                self.prv.iccs = (self.prv.iccs & 0x80) | (v & 0x41);
                if !was_running && v & 1 != 0 {
                    self.timer_deadline = self.cycles + self.prv.icr.max(1) as u64;
                }
            }
            PrivReg::Icr => {
                self.prv.icr = v;
                if self.prv.iccs & 1 != 0 {
                    self.timer_deadline = self.cycles + v.max(1) as u64;
                }
            }
            PrivReg::Txdb => self.console_out.push(v as u8),
            PrivReg::Txcs | PrivReg::Rxdb | PrivReg::Rxcs => {}
            PrivReg::Trctl => self.prv.trctl = v,
            PrivReg::Trbase => self.prv.trbase = v,
            PrivReg::Trptr => self.prv.trptr = v,
            PrivReg::Trlim => self.prv.trlim = v,
            PrivReg::Mapen => self.prv.mapen = v & 1,
            PrivReg::Tbia => self.tlb.flush_all(),
            PrivReg::Tbis => self.tlb.flush_single(v),
        }
    }
}

// ── The ALU ───────────────────────────────────────────────────────────

pub(crate) fn alu_exec(op: AluOp, a: u32, b: u32, size: DataSize) -> (u32, AluFlags) {
    let mask = size.mask();
    let sign = size.sign_bit();
    let am = a & mask;
    let bm = b & mask;
    let mut f = AluFlags::default();
    let result: u32 = match op {
        AluOp::Add => {
            let sum = am as u64 + bm as u64;
            let r = (sum as u32) & mask;
            f.c = sum > mask as u64;
            f.v = ((am ^ r) & (bm ^ r) & sign) != 0;
            r
        }
        AluOp::Sub => sub_flags(am, bm, mask, sign, &mut f),
        AluOp::RSub => sub_flags(bm, am, mask, sign, &mut f),
        AluOp::Mul => {
            let prod = sext(am, size) as i64 * sext(bm, size) as i64;
            let r = (prod as u32) & mask;
            f.v = prod != sext(r, size) as i64;
            r
        }
        AluOp::Div | AluOp::Rem => {
            let divisor = sext(am, size);
            let dividend = sext(bm, size);
            if divisor == 0 {
                f.divz = true;
                bm
            } else if dividend == i32::MIN && divisor == -1 && size == DataSize::Long {
                f.v = true;
                bm
            } else if op == AluOp::Div {
                (dividend.wrapping_div(divisor) as u32) & mask
            } else {
                (dividend.wrapping_rem(divisor) as u32) & mask
            }
        }
        AluOp::And => am & bm,
        AluOp::BicR => bm & !am,
        AluOp::Or => am | bm,
        AluOp::Xor => am ^ bm,
        AluOp::Ash => {
            let count = sext(am, DataSize::Long);
            if count >= 0 {
                let c = count.min(63) as u32;
                let shifted = if c >= 32 { 0 } else { bm << c } & mask;
                // V if any significant bits were lost.
                let back = if c >= 32 {
                    0
                } else {
                    ((sext(shifted, size) >> c) as u32) & mask
                };
                f.v = bm != 0 && (back != bm || c >= 32);
                shifted
            } else {
                let c = (-count).min(31) as u32;
                ((sext(bm, size) >> c) as u32) & mask
            }
        }
        AluOp::Lsr => {
            let c = am.min(63);
            if c >= 32 {
                0
            } else {
                (bm >> c) & mask
            }
        }
        AluOp::Lsl => {
            let c = am.min(63);
            if c >= 32 {
                0
            } else {
                (bm << c) & mask
            }
        }
        AluOp::Pass => bm,
        AluOp::Not => !bm & mask,
        AluOp::Neg => sub_flags(0, bm, mask, sign, &mut f),
        AluOp::SextB => (bm as u8 as i8 as i32 as u32) & mask,
        AluOp::SextW => (bm as u16 as i16 as i32 as u32) & mask,
    };
    f.z = result & mask == 0;
    f.n = result & sign != 0;
    (result, f)
}

fn sub_flags(a: u32, b: u32, mask: u32, sign: u32, f: &mut AluFlags) -> u32 {
    // a - b with the VAX borrow convention: C set when b > a unsigned.
    let r = a.wrapping_sub(b) & mask;
    f.c = b > a;
    f.v = ((a ^ b) & (a ^ r) & sign) != 0;
    r
}

fn sext(v: u32, size: DataSize) -> i32 {
    size.sign_extend(v) as i32
}

#[cfg(test)]
mod alu_tests {
    use super::*;

    fn run(op: AluOp, a: u32, b: u32) -> (u32, AluFlags) {
        alu_exec(op, a, b, DataSize::Long)
    }

    #[test]
    fn add_carry_and_overflow() {
        let (r, f) = run(AluOp::Add, 0xFFFF_FFFF, 1);
        assert_eq!(r, 0);
        assert!(f.c && f.z && !f.n);
        let (r, f) = run(AluOp::Add, 0x7FFF_FFFF, 1);
        assert_eq!(r, 0x8000_0000);
        assert!(f.v && f.n && !f.c);
    }

    #[test]
    fn sub_borrow() {
        let (r, f) = run(AluOp::Sub, 1, 2);
        assert_eq!(r, 0xFFFF_FFFF);
        assert!(f.c && f.n);
        let (_, f) = run(AluOp::Sub, 5, 5);
        assert!(f.z && !f.c);
    }

    #[test]
    fn rsub_is_reverse() {
        let (r, _) = run(AluOp::RSub, 2, 10);
        assert_eq!(r, 8);
    }

    #[test]
    fn byte_size_flags() {
        let (r, f) = alu_exec(AluOp::Add, 0x7F, 1, DataSize::Byte);
        assert_eq!(r, 0x80);
        assert!(f.v && f.n, "byte-size overflow detected");
        let (r, f) = alu_exec(AluOp::Add, 0xFF, 1, DataSize::Byte);
        assert_eq!(r, 0);
        assert!(f.c && f.z);
    }

    #[test]
    fn mul_overflow() {
        let (_, f) = run(AluOp::Mul, 0x10000, 0x10000);
        assert!(f.v);
        let (r, f) = run(AluOp::Mul, 6, 7);
        assert_eq!(r, 42);
        assert!(!f.v);
        let (r, _) = run(AluOp::Mul, 0xFFFF_FFFF, 5); // -1 * 5
        assert_eq!(r as i32, -5);
    }

    #[test]
    fn div_and_rem() {
        let (r, f) = run(AluOp::Div, 3, 10);
        assert_eq!(r, 3);
        assert!(!f.divz);
        let (r, _) = run(AluOp::Rem, 3, 10);
        assert_eq!(r, 1);
        let (r, _) = run(AluOp::Div, 0xFFFF_FFFE, 10); // 10 / -2
        assert_eq!(r as i32, -5);
        let (_, f) = run(AluOp::Div, 0, 10);
        assert!(f.divz);
        let (_, f) = run(AluOp::Div, 0xFFFF_FFFF, 0x8000_0000); // MIN / -1
        assert!(f.v);
    }

    #[test]
    fn ash_both_directions() {
        let (r, _) = run(AluOp::Ash, 4, 1);
        assert_eq!(r, 16);
        let (r, _) = run(AluOp::Ash, 0xFFFF_FFFE, 16); // >> 2
        assert_eq!(r, 4);
        let (r, _) = run(AluOp::Ash, 0xFFFF_FFFF, 0x8000_0000u32); // -1 arith
        assert_eq!(r, 0xC000_0000);
        let (_, f) = run(AluOp::Ash, 1, 0x4000_0000);
        assert!(f.v, "lost the sign bit");
    }

    #[test]
    fn logic_ops() {
        assert_eq!(run(AluOp::And, 0b1100, 0b1010).0, 0b1000);
        assert_eq!(run(AluOp::Or, 0b1100, 0b1010).0, 0b1110);
        assert_eq!(run(AluOp::Xor, 0b1100, 0b1010).0, 0b0110);
        assert_eq!(run(AluOp::BicR, 0b1100, 0b1010).0, 0b0010);
        assert_eq!(run(AluOp::Not, 0, 0).0, 0xFFFF_FFFF);
    }

    #[test]
    fn neg_carry_convention() {
        let (r, f) = run(AluOp::Neg, 0, 5);
        assert_eq!(r as i32, -5);
        assert!(f.c, "C set when operand nonzero");
        let (_, f) = run(AluOp::Neg, 0, 0);
        assert!(!f.c && f.z);
    }

    #[test]
    fn sign_extensions() {
        assert_eq!(run(AluOp::SextB, 0, 0x80).0, 0xFFFF_FF80);
        assert_eq!(run(AluOp::SextB, 0, 0x7F).0, 0x7F);
        assert_eq!(run(AluOp::SextW, 0, 0x8000).0, 0xFFFF_8000);
    }

    #[test]
    fn shifts_saturate() {
        assert_eq!(run(AluOp::Lsl, 40, 1).0, 0);
        assert_eq!(run(AluOp::Lsr, 40, 0xFFFF_FFFF).0, 0);
        assert_eq!(run(AluOp::Lsl, 4, 1).0, 16);
        assert_eq!(run(AluOp::Lsr, 4, 16).0, 1);
    }
}
