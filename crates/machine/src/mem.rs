//! Physical memory with an OS-invisible reserved region.
//!
//! ATUM hid the trace buffer by telling the operating system at boot that
//! the machine had less memory than it physically did. [`MemLayout`]
//! captures that split: `os_visible_bytes` is what the boot image reports
//! to the kernel, and the range above it up to `total_bytes` is the
//! reserved region the tracer uses. Nothing enforces the boundary at the
//! hardware level — exactly as on the 8200, where the protection was
//! purely "the OS never learns those page frames exist".

use std::fmt;

/// Physical memory sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLayout {
    /// Total physical bytes (must be a multiple of the page size).
    pub total_bytes: u32,
    /// Bytes reported to the operating system; the rest is reserved.
    pub os_visible_bytes: u32,
}

impl MemLayout {
    /// 4 MiB total with a 1 MiB reserved region — roughly the 8200 setup
    /// scaled to SVX's workloads.
    pub fn small() -> MemLayout {
        MemLayout {
            total_bytes: 4 << 20,
            os_visible_bytes: 3 << 20,
        }
    }

    /// 16 MiB total with a `reserved` -byte trace region.
    ///
    /// # Panics
    ///
    /// Panics if `reserved` does not leave at least 1 MiB visible.
    pub fn with_reserved(reserved: u32) -> MemLayout {
        let total: u32 = 16 << 20;
        assert!(reserved <= total - (1 << 20), "reserved region too large");
        MemLayout {
            total_bytes: total,
            os_visible_bytes: total - reserved,
        }
    }

    /// First physical address of the reserved region.
    pub fn reserved_base(&self) -> u32 {
        self.os_visible_bytes
    }

    /// Size of the reserved region in bytes.
    pub fn reserved_len(&self) -> u32 {
        self.total_bytes - self.os_visible_bytes
    }
}

impl fmt::Display for MemLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KiB physical ({} KiB visible + {} KiB reserved)",
            self.total_bytes / 1024,
            self.os_visible_bytes / 1024,
            self.reserved_len() / 1024
        )
    }
}

/// A physical-memory range violation: an access to `pa..pa+len` fell
/// outside the `mem_len` bytes of physical memory.
///
/// The typed form matters on the trace-extraction path: the host drains
/// the trace buffer while the machine is live, and a corrupt trace
/// pointer must surface as a diagnosable error, not a panic mid-capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemError {
    /// First physical address of the offending access.
    pub pa: u32,
    /// Length of the access in bytes.
    pub len: u32,
    /// Size of physical memory in bytes.
    pub mem_len: u32,
    /// Whether the access was a write.
    pub write: bool,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "physical {} {:#x}+{} outside {} bytes of memory",
            if self.write { "write" } else { "read" },
            self.pa,
            self.len,
            self.mem_len
        )
    }
}

impl std::error::Error for MemError {}

/// Flat little-endian physical memory.
#[derive(Debug, Clone)]
pub struct PhysMemory {
    bytes: Vec<u8>,
    layout: MemLayout,
}

impl PhysMemory {
    /// Allocates zeroed memory for the layout.
    ///
    /// # Panics
    ///
    /// Panics if the layout is inconsistent or not page-aligned.
    pub fn new(layout: MemLayout) -> PhysMemory {
        assert!(layout.os_visible_bytes <= layout.total_bytes);
        assert_eq!(layout.total_bytes % atum_arch::PAGE_SIZE, 0);
        assert_eq!(layout.os_visible_bytes % atum_arch::PAGE_SIZE, 0);
        PhysMemory {
            bytes: vec![0; layout.total_bytes as usize],
            layout,
        }
    }

    /// The layout this memory was built with.
    pub fn layout(&self) -> MemLayout {
        self.layout
    }

    /// Total size in bytes.
    pub fn len(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Whether the memory is empty (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Whether `pa..pa+len` lies inside physical memory.
    pub fn contains(&self, pa: u32, len: u32) -> bool {
        (pa as u64) + (len as u64) <= self.bytes.len() as u64
    }

    /// Reads a byte. Returns `None` outside memory.
    #[inline]
    pub fn read_u8(&self, pa: u32) -> Option<u8> {
        self.bytes.get(pa as usize).copied()
    }

    /// Writes a byte. Returns `None` outside memory.
    #[inline]
    pub fn write_u8(&mut self, pa: u32, v: u8) -> Option<()> {
        *self.bytes.get_mut(pa as usize)? = v;
        Some(())
    }

    /// Reads a little-endian longword with a single bounds check — the
    /// capture-path fast accessor (instruction-stream refills, PTE
    /// fetches and the trace patch's record stores are all longwords).
    #[inline]
    pub fn read_u32(&self, pa: u32) -> Option<u32> {
        let bytes = self.bytes.get(pa as usize..(pa as usize).checked_add(4)?)?;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }

    /// Writes a little-endian longword with a single bounds check.
    #[inline]
    pub fn write_u32(&mut self, pa: u32, v: u32) -> Option<()> {
        let bytes = self
            .bytes
            .get_mut(pa as usize..(pa as usize).checked_add(4)?)?;
        bytes.copy_from_slice(&v.to_le_bytes());
        Some(())
    }

    /// Borrows a physical range without copying (the trace-extraction
    /// path; [`PhysMemory::read_bytes`] clones, this does not).
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] if the range falls outside memory.
    pub fn slice(&self, pa: u32, len: u32) -> Result<&[u8], MemError> {
        if !self.contains(pa, len) {
            return Err(MemError {
                pa,
                len,
                mem_len: self.len(),
                write: false,
            });
        }
        Ok(&self.bytes[pa as usize..(pa + len) as usize])
    }

    /// Reads a little-endian value of `size` bytes (1, 2 or 4).
    #[inline]
    pub fn read_le(&self, pa: u32, size: u32) -> Option<u32> {
        let start = pa as usize;
        let end = start.checked_add(size as usize)?;
        let slice = self.bytes.get(start..end)?;
        let mut v = 0u32;
        for (i, b) in slice.iter().enumerate() {
            v |= (*b as u32) << (8 * i);
        }
        Some(v)
    }

    /// Writes a little-endian value of `size` bytes (1, 2 or 4).
    #[inline]
    pub fn write_le(&mut self, pa: u32, size: u32, v: u32) -> Option<()> {
        let start = pa as usize;
        let end = start.checked_add(size as usize)?;
        let slice = self.bytes.get_mut(start..end)?;
        for (i, b) in slice.iter_mut().enumerate() {
            *b = (v >> (8 * i)) as u8;
        }
        Some(())
    }

    /// Bulk write (loader path).
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] if the range falls outside memory.
    pub fn write_bytes(&mut self, pa: u32, data: &[u8]) -> Result<(), MemError> {
        if !self.contains(pa, data.len() as u32) {
            return Err(MemError {
                pa,
                len: data.len() as u32,
                mem_len: self.len(),
                write: true,
            });
        }
        self.bytes[pa as usize..pa as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Bulk read (extraction path).
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] if the range falls outside memory.
    pub fn read_bytes(&self, pa: u32, len: u32) -> Result<Vec<u8>, MemError> {
        if !self.contains(pa, len) {
            return Err(MemError {
                pa,
                len,
                mem_len: self.len(),
                write: false,
            });
        }
        Ok(self.bytes[pa as usize..(pa + len) as usize].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_small() {
        let l = MemLayout::small();
        assert_eq!(l.reserved_base(), 3 << 20);
        assert_eq!(l.reserved_len(), 1 << 20);
    }

    #[test]
    fn layout_with_reserved() {
        let l = MemLayout::with_reserved(2 << 20);
        assert_eq!(l.total_bytes, 16 << 20);
        assert_eq!(l.reserved_len(), 2 << 20);
    }

    #[test]
    fn le_round_trip() {
        let mut m = PhysMemory::new(MemLayout::small());
        m.write_le(0x100, 4, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read_le(0x100, 4), Some(0xDEAD_BEEF));
        assert_eq!(m.read_le(0x100, 2), Some(0xBEEF));
        assert_eq!(m.read_u8(0x103), Some(0xDE));
        m.write_le(0x200, 1, 0x1FF).unwrap();
        assert_eq!(m.read_u8(0x200), Some(0xFF));
    }

    #[test]
    fn out_of_range_is_none() {
        let m = PhysMemory::new(MemLayout::small());
        let top = m.len();
        assert_eq!(m.read_le(top - 2, 4), None);
        assert_eq!(m.read_u8(top), None);
        assert!(m.read_le(u32::MAX, 4).is_none());
    }

    #[test]
    fn bulk_round_trip() {
        let mut m = PhysMemory::new(MemLayout::small());
        m.write_bytes(0x400, &[1, 2, 3]).unwrap();
        assert_eq!(m.read_bytes(0x400, 3).unwrap(), vec![1, 2, 3]);
        assert!(m.write_bytes(m.len() - 1, &[1, 2]).is_err());
        assert!(m.read_bytes(m.len(), 1).is_err());
    }
}
