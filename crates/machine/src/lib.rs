//! # atum-machine — the simulated SVX machine
//!
//! A complete microcoded machine: the micro-engine datapath executing a
//! [`ControlStore`], physical memory with an OS-invisible reserved region,
//! a VAX-style MMU with a translation buffer, an interval timer and a
//! console. Everything architectural happens by executing micro-ops; Rust
//! code implements only what was hardware on the 8200 (the ALU, the
//! translation buffer and its PTE walk, the register change-log, interrupt
//! arbitration).
//!
//! The machine deliberately has **no tracing hooks**. Address tracing is
//! added by `atum-core` purely by appending micro-routines to the control
//! store and re-pointing entry slots — the point of the reproduction.
//!
//! ## Example
//!
//! ```
//! use atum_machine::{Machine, MemLayout, RunExit};
//! use atum_arch::Opcode;
//!
//! let mut m = Machine::new(MemLayout::small());
//! // movl #7, r2 ; halt — poked directly into physical memory, run with
//! // mapping disabled (boot state).
//! m.write_phys(0x200, &[Opcode::Movl.to_byte(), 0x07, 0x52, Opcode::Halt.to_byte()])
//!     .unwrap();
//! m.set_pc(0x200);
//! assert_eq!(m.run(100_000), RunExit::Halted);
//! assert_eq!(m.gpr(2), 7);
//! ```
//!
//! [`ControlStore`]: atum_ucode::ControlStore

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod fast;
mod mem;
mod mmu;
pub mod regs;
pub mod superblock;

pub use engine::{RefCounts, RunExit};
pub use fast::FastImage;
pub use mem::{MemError, MemLayout, PhysMemory};
pub use mmu::{Tlb, TlbStats};
pub use regs::{PrvFile, RegFile};
pub use superblock::{SbCache, SbOp, Superblock};

/// Which interpreter drives [`Machine::run`] / [`Machine::step_insns`].
/// All three tiers produce identical architectural state, traces,
/// counters and microcycle counts (the three-way differential suite in
/// `atum-bench` pins this); they differ only in host throughput.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EngineTier {
    /// The word-at-a-time reference interpreter — slow, obviously
    /// correct, kept as the oracle.
    Reference,
    /// The predecoded per-op fast engine (PR 4).
    Fast,
    /// The fast engine plus the traced-superblock tier: hot micro-paths
    /// are stitched into whole-block dispatches (see
    /// [`superblock`]).
    #[default]
    Superblock,
}

use atum_arch::{CpuMode, Gpr, PrivReg, Psl};
use atum_ucode::{stock, ControlStore, Entry};

/// Process-global default [`EngineTier`] for newly created machines
/// (`2` = [`EngineTier::Superblock`], the enum's default).
static DEFAULT_TIER: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(2);

/// Sets the [`EngineTier`] every subsequently created [`Machine`] starts
/// on. Harnesses that build machines deep inside a pipeline (the
/// experiment runner in `atum-analysis`) can be tier-toggled wholesale
/// with this — the tier byte-identity suite runs the quick-scale
/// experiments under every tier and asserts identical output. Existing
/// machines are unaffected; use [`Machine::set_engine_tier`] for those.
pub fn set_default_engine_tier(tier: EngineTier) {
    DEFAULT_TIER.store(tier as u8, std::sync::atomic::Ordering::Relaxed);
}

/// The tier newly created machines start on (see
/// [`set_default_engine_tier`]).
pub fn default_engine_tier() -> EngineTier {
    match DEFAULT_TIER.load(std::sync::atomic::Ordering::Relaxed) {
        0 => EngineTier::Reference,
        1 => EngineTier::Fast,
        _ => EngineTier::Superblock,
    }
}

/// The machine: control store, datapath state, memory, MMU and devices.
#[derive(Debug)]
pub struct Machine {
    pub(crate) cs: ControlStore,
    pub(crate) regs: RegFile,
    pub(crate) prv: PrvFile,
    pub(crate) mem: PhysMemory,
    pub(crate) tlb: Tlb,
    pub(crate) upc: u32,
    pub(crate) ustack: [u32; engine::MICRO_STACK_LIMIT],
    pub(crate) usp: usize,
    pub(crate) cycles: u64,
    pub(crate) insns: u64,
    pub(crate) insn_pc: u32,
    pub(crate) halted: bool,
    pub(crate) exc_depth: u8,
    pub(crate) rlog: Vec<(u8, u32)>,
    pub(crate) rlog_mask: u16,
    pub(crate) psl_at_start: Psl,
    pub(crate) timer_deadline: u64,
    pub(crate) timer_pending: bool,
    pub(crate) console_out: Vec<u8>,
    pub(crate) console_in: std::collections::VecDeque<u8>,
    pub(crate) counts: RefCounts,
    /// Predecoded control-store image (rebuilt when the store version
    /// moves; see [`crate::fast`]).
    pub(crate) fast: fast::FastImage,
    /// Translation micro-cache fronting the TB on the fast path.
    pub(crate) xc: mmu::XlateCache,
    /// Which interpreter `run`/`step_insns` use.
    pub(crate) tier: EngineTier,
    /// Superblock cache for the superblock tier (keyed on the store
    /// version and `sb_epoch`; see [`superblock::SbCache`]).
    pub(crate) sblocks: superblock::SbCache,
    /// TB/mapping-event epoch: bumped on every translation-structure
    /// event (TBIA/TBIS writes, `tbflush` micro-ops, base/length/MAPEN
    /// register writes) so the superblock cache invalidates at exactly
    /// the points the translation micro-cache flushes.
    pub(crate) sb_epoch: u64,
}

impl Machine {
    /// Creates a machine with the stock control store, at boot state:
    /// kernel mode, IPL 31, mapping disabled, PC = 0.
    pub fn new(layout: MemLayout) -> Machine {
        Machine::with_control_store(layout, stock::build())
    }

    /// Creates a machine with a caller-supplied control store (used by
    /// tests that want custom microcode).
    pub fn with_control_store(layout: MemLayout, cs: ControlStore) -> Machine {
        let mut m = Machine {
            upc: cs.entry(Entry::Fetch),
            cs,
            regs: RegFile::new(),
            prv: PrvFile::new(),
            mem: PhysMemory::new(layout),
            tlb: Tlb::new(),
            ustack: [0; engine::MICRO_STACK_LIMIT],
            usp: 0,
            cycles: 0,
            insns: 0,
            insn_pc: 0,
            halted: false,
            exc_depth: 0,
            rlog: Vec::with_capacity(8),
            rlog_mask: 0,
            psl_at_start: Psl::new(),
            timer_deadline: u64::MAX,
            timer_pending: false,
            console_out: Vec::new(),
            console_in: std::collections::VecDeque::new(),
            counts: RefCounts::default(),
            fast: fast::FastImage::empty(),
            xc: mmu::XlateCache::new(),
            tier: default_engine_tier(),
            sblocks: superblock::SbCache::empty(),
            sb_epoch: 0,
        };
        m.regs.psl = Psl::new();
        m.psl_at_start = m.regs.psl;
        m
    }

    /// The control store (for inspection).
    pub fn control_store(&self) -> &ControlStore {
        &self.cs
    }

    /// Mutable access to the control store — the writable-control-store
    /// interface that patches (and only patches) use.
    pub fn control_store_mut(&mut self) -> &mut ControlStore {
        &mut self.cs
    }

    /// Physical memory (host/console access, e.g. trace extraction).
    pub fn memory(&self) -> &PhysMemory {
        &self.mem
    }

    /// Writes bytes into physical memory (the boot loader path).
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] if the range falls outside physical memory.
    pub fn write_phys(&mut self, pa: u32, bytes: &[u8]) -> Result<(), MemError> {
        self.mem.write_bytes(pa, bytes)
    }

    /// Reads bytes from physical memory.
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] if the range falls outside physical memory.
    pub fn read_phys(&self, pa: u32, len: u32) -> Result<Vec<u8>, MemError> {
        self.mem.read_bytes(pa, len)
    }

    /// A general register's value.
    pub fn gpr(&self, n: u8) -> u32 {
        self.regs.gpr((n & 0xF) as usize)
    }

    /// Sets a general register.
    pub fn set_gpr(&mut self, n: u8, value: u32) {
        self.regs.file[(n & 0xF) as usize] = value;
        if n & 0xF == 15 {
            self.regs.file[regs::slots::IBCNT] = 0;
        }
    }

    /// The program counter.
    pub fn pc(&self) -> u32 {
        self.gpr(Gpr::PC.index())
    }

    /// Sets the program counter (invalidates the prefetch buffer) and
    /// restarts instruction processing there.
    pub fn set_pc(&mut self, pc: u32) {
        self.set_gpr(Gpr::PC.index(), pc);
        self.insn_pc = pc;
        self.upc = self.cs.entry(Entry::Fetch);
        self.usp = 0;
    }

    /// The processor status longword.
    pub fn psl(&self) -> Psl {
        self.regs.psl
    }

    /// Sets the PSL (host/boot use).
    pub fn set_psl(&mut self, psl: Psl) {
        self.regs.psl = psl;
        self.psl_at_start = psl;
    }

    /// Whether the CPU is in kernel mode.
    pub fn is_kernel(&self) -> bool {
        self.regs.psl.mode() == CpuMode::Kernel
    }

    /// Reads a privileged register as the host/console would.
    pub fn read_prv(&self, reg: PrivReg) -> u32 {
        self.prv.read(reg, &self.regs)
    }

    /// Writes a privileged register as the host/console would (with device
    /// side effects, e.g. starting the interval timer).
    pub fn write_prv(&mut self, reg: PrivReg, value: u32) {
        self.write_prv_internal(reg, value);
    }

    /// Micro-cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Architectural instructions completed so far.
    pub fn insns(&self) -> u64 {
        self.insns
    }

    /// Memory-reference and event counters.
    pub fn counts(&self) -> &RefCounts {
        &self.counts
    }

    /// Translation-buffer statistics.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// Takes everything the console has output so far.
    pub fn take_console_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.console_out)
    }

    /// Queues a byte for the console receiver.
    pub fn push_console_input(&mut self, byte: u8) {
        self.console_in.push_back(byte);
    }

    /// Clears the halted latch so [`Machine::run`] can continue (the
    /// console "continue" command; used after trace-buffer-full halts).
    pub fn resume(&mut self) {
        self.halted = false;
    }

    /// Selects the word-at-a-time reference interpreter instead of the
    /// predecoded fast engine. Both produce identical architectural
    /// state, traces, counters and microcycle counts (the differential
    /// suite pins this); the reference path exists as the oracle and for
    /// debugging the fast one.
    ///
    /// Kept for PR 4 era callers: `true` selects
    /// [`EngineTier::Reference`], `false` [`EngineTier::Fast`]. New code
    /// should use [`Machine::set_engine_tier`].
    pub fn set_reference_engine(&mut self, on: bool) {
        self.tier = if on {
            EngineTier::Reference
        } else {
            EngineTier::Fast
        };
    }

    /// Selects the execution tier for [`Machine::run`] /
    /// [`Machine::step_insns`]. Tiers can be switched at any instruction
    /// boundary; all produce identical results.
    pub fn set_engine_tier(&mut self, tier: EngineTier) {
        self.tier = tier;
    }

    /// The currently selected execution tier.
    pub fn engine_tier(&self) -> EngineTier {
        self.tier
    }

    /// Rebuilds the predecoded image if the control store has been
    /// mutated since it was last built (patch loads bump the store's
    /// version counter; between mutations this is a single compare).
    pub(crate) fn ensure_fast(&mut self) {
        if self.fast.version != self.cs.version() {
            self.fast = fast::FastImage::build(&self.cs);
        }
    }

    /// The predecoded control-store image, rebuilt first if the store has
    /// been mutated since the last build — the inspection point for
    /// external verifiers of the fast-engine lowering.
    pub fn fast_image(&mut self) -> &fast::FastImage {
        self.ensure_fast();
        &self.fast
    }

    /// Rekeys (and empties) the superblock cache if the control store
    /// has been mutated since it was last keyed. The TB-event epoch is
    /// checked lazily at every probe, so it needs no eager handling
    /// here.
    pub(crate) fn ensure_superblocks(&mut self) {
        if self.sblocks.version() != self.cs.version() {
            self.sblocks.reset(
                self.cs.version(),
                self.sb_epoch,
                self.cs.entry(Entry::Fetch),
                self.fast.ops.len(),
            );
        }
    }

    /// The superblock cache, rekeyed first if the control store has been
    /// mutated — the inspection point for external verifiers of the
    /// superblock stitching (the `superblock` pass in `atum-mclint`
    /// re-derives every cached block from the micro-words and diffs).
    pub fn superblock_cache(&mut self) -> &superblock::SbCache {
        self.ensure_fast();
        self.ensure_superblocks();
        &self.sblocks
    }

    /// Runs until halt, returning an error on a cycle-limit or fatal exit.
    ///
    /// # Errors
    ///
    /// Returns the non-halt [`RunExit`] as an error.
    pub fn run_until_halt(&mut self, max_cycles: u64) -> Result<(), RunExit> {
        match self.run(max_cycles) {
            RunExit::Halted => Ok(()),
            other => Err(other),
        }
    }
}
