//! The traced-superblock tier: straight-line stitches of predecoded
//! micro-ops, dispatched whole from the fast engine's hot loop.
//!
//! The fast engine (see [`crate::fast`]) still pays one dispatch per
//! [`DecOp`]: a deadline check, a bounds-checked fetch, a micro-PC
//! increment and a cycle charge around every op. This module stitches
//! hot micro-paths into **superblocks**: a block starts at a dispatch
//! target (or another block's exit) once it has been reached
//! [`HOT_THRESHOLD`] times, and follows the microcode statically —
//! unconditional jumps are folded away entirely (their cycle cost fused
//! into the precomputed offsets), matched `call`/`ret` pairs are
//! followed through, and an instruction boundary (`DecodeNext`)
//! continues into the fetch routine — until it reaches an op whose
//! successor cannot be known statically (a dispatch, a halt/fault, a
//! dynamic privileged-register access).
//!
//! The payoff is in the representation: a block is a flat [`SbOp`] list
//! where every element carries the **raw predecoded op** plus its
//! control-store address and its **precomputed cumulative cycle cost**
//! (`cyc`). Keeping the element a plain [`DecOp`] means the block
//! executor dispatches through a single jump table exactly like the
//! per-op loop — no second discriminant layer. One fused deadline check
//! at block entry (`cycles + total_cost <= deadline`, which holds iff
//! the per-op loop would have executed every charge of the block)
//! replaces the per-op checks; pure ops then execute back-to-back with
//! no fetch, no micro-PC tracking and no cycle arithmetic at all, and
//! the current cycle count is reconstructed as `entry + cyc` only at the
//! points that observe it (a taken guard, a memory helper, the
//! boundary). Trace-append patch code is nothing special here — the
//! hook's moves, adds and `Trptr` update fold into the block like any
//! other microcode, which is how capture-path tracing gets the same
//! fused accounting as the stock flow.
//!
//! Every op that can redirect the micro-PC becomes a guarded element: a
//! conditional branch evaluates its condition and, when taken, **exits
//! the block** back to the probe loop (which re-probes at the target, so
//! hot micro-loop heads become blocks of their own and blocks chain
//! without per-op involvement). A deadline that lands mid-block — only
//! possible when a PTE walk charged cycles beyond the static total —
//! falls back to the per-op loop at the next element's address with all
//! accounting already per-op-identical.
//!
//! Equivalence is by construction and then proven twice over: the
//! three-way differential suite in `crates/bench/tests/fast_equiv.rs`
//! pins it dynamically, and the `superblock` pass in `atum-mclint`
//! re-derives every cached block from its source micro-words and diffs.
//!
//! The cache is keyed on [`ControlStore::version`] exactly like
//! [`FastImage`], and additionally invalidated on every TB/mapping-
//! register event the translation micro-cache hooks (`TBIA`/`TBIS`
//! writes, the `tbflush` micro-ops, base/length/`MAPEN` register writes)
//! via the machine's superblock epoch counter — the conservative
//! contract the invalidation proptest in `crates/bench` pins.
//!
//! [`ControlStore::version`]: atum_ucode::ControlStore::version
//! [`FastImage`]: crate::fast::FastImage

use atum_arch::PrivReg;
use atum_ucode::cost;

use crate::fast::{DecOp, FastImage};

/// How many times a candidate head must be reached at dispatch before a
/// block is formed there.
pub const HOT_THRESHOLD: u16 = 16;

/// Profiling-counter sentinel: formation at this head failed (the head op
/// itself ends a block), never try again.
const NEVER: u16 = u16::MAX;

/// Cap on total micro-ops walked into one block (elements + folded
/// jumps).
pub const MAX_BLOCK_OPS: usize = 512;

/// One element of a superblock: the raw predecoded op, its
/// control-store address and the cumulative cycle cost of the block
/// through this element inclusive (counting the [`cost::BASE`] of every
/// folded unconditional jump executed before it). The address is what
/// makes exits exact: any fault, guard or fallback mid-block resumes
/// the per-op loop at a real control-store address with all accounting
/// per-op-identical.
///
/// Only a restricted member set ever appears here:
///
/// * pure ops (see the formation filter): no exits, no faults, no
///   micro-PC effects, cost exactly [`cost::BASE`];
/// * conditional micro-branches, which act as **guards**: taken ⇒ exit
///   the block to the branch target, not taken ⇒ fall through to the
///   next element;
/// * memory ops ([`DecOp::Read`]/[`DecOp::Write`]/[`DecOp::PhysRead`]/
///   [`DecOp::PhysWrite`]), which may fault out of the block;
/// * [`DecOp::Call`] matched by a later [`DecOp::Ret`] in the same
///   block — formation followed the callee, so the call pushes its
///   statically known return address (`upc + 1`) and the ret pops it;
/// * [`DecOp::DecodeNext`], the instruction boundary, followed through
///   into the fetch routine unless a trap or interrupt redirects the
///   micro-PC (which exits the block).
///
/// Unconditional [`DecOp::Jump`]s never appear: they fold into the
/// cycle offsets at formation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SbOp {
    /// Control-store address of this element.
    pub upc: u32,
    /// Cycles charged from block entry through this element, inclusive.
    pub cyc: u32,
    /// The predecoded op itself.
    pub op: DecOp,
}

/// A formed superblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// Control-store address the block starts at.
    pub head: u32,
    /// The elements, in execution order (may be empty for a pure folded
    /// jump chain, which still charges cycles).
    pub ops: Vec<SbOp>,
    /// Where the per-op loop resumes after the last element: the address
    /// of the block-ending op (a dispatch, halt, fault, …) the block
    /// does not subsume.
    pub exit_upc: u32,
    /// Total static cycle charge of a full guard-free pass, including
    /// every folded jump (trailing ones too) and the memory surcharge of
    /// the memory elements — everything except data-dependent PTE-walk
    /// charges. Always ≥ 1.
    pub total_cost: u32,
}

/// Whether a constant privileged-register write is free of engine side
/// effects (no timer arming, no console, no translation structures) and
/// so can live inside a superblock as a pure op. Mirrors the fast
/// engine's `write_prv_plain` set.
pub fn plain_prv(reg: PrivReg) -> bool {
    matches!(
        reg,
        PrivReg::Ksp
            | PrivReg::Usp
            | PrivReg::Pcbb
            | PrivReg::Scbb
            | PrivReg::Trctl
            | PrivReg::Trbase
            | PrivReg::Trptr
            | PrivReg::Trlim
    )
}

/// Whether a predecoded op is pure for superblock purposes: it cannot
/// exit, fault, or move the micro-PC, and costs exactly [`cost::BASE`].
fn pure_op(op: &DecOp) -> bool {
    match op {
        DecOp::MovSS { .. }
        | DecOp::MovIS { .. }
        | DecOp::MovGIS { .. }
        | DecOp::MovSGI { .. }
        | DecOp::MovSMF { .. }
        | DecOp::MovSG { .. }
        | DecOp::AluSS { .. }
        | DecOp::AluIS { .. }
        | DecOp::AluSI { .. }
        | DecOp::Mov { .. }
        | DecOp::MovID { .. }
        | DecOp::Alu { .. }
        | DecOp::AluID { .. }
        | DecOp::AluDI { .. }
        | DecOp::AluConst { .. }
        | DecOp::SetSize(_)
        | DecOp::AdvancePc
        | DecOp::ReadPrK { .. } => true,
        DecOp::WritePrK { reg, .. } | DecOp::WritePrKI { reg, .. } => plain_prv(*reg),
        _ => false,
    }
}

impl Superblock {
    /// Statically forms the superblock headed at `head`, or `None` when
    /// the head op itself ends a block (a dispatch, halt, …).
    ///
    /// Formation is a pure function of the predecoded image and the
    /// resolved fetch entry — that determinism is what lets the
    /// `superblock` pass in `atum-mclint` re-derive every cached block
    /// independently from the source micro-words and diff.
    pub fn form(img: &FastImage, fetch_entry: u32, head: u32) -> Option<Superblock> {
        let store = &img.ops;
        if head as usize >= store.len() {
            return None;
        }
        let mut ops: Vec<SbOp> = Vec::new();
        let mut visited = std::collections::HashSet::new();
        let mut callstack: Vec<u32> = Vec::new();
        let mut cyc: u32 = 0;
        let mut walked = 0usize;
        let mut upc = head;

        macro_rules! push_op {
            ($charge:expr, $op:expr) => {{
                cyc += $charge;
                ops.push(SbOp { upc, cyc, op: $op });
            }};
        }

        loop {
            if walked >= MAX_BLOCK_OPS {
                break;
            }
            // Re-reaching an address closes the block (a micro-loop: the
            // block will chain back into itself through the cache).
            if !visited.insert(upc) {
                break;
            }
            let Some(&op) = store.get(upc as usize) else {
                break;
            };
            walked += 1;
            let base = cost::BASE as u32;
            let mem = (cost::BASE + cost::MEM_EXTRA) as u32;
            match op {
                _ if pure_op(&op) => {
                    push_op!(base, op);
                    upc += 1;
                }
                // Unconditional jumps fold away: their BASE cycle joins
                // the cumulative offsets and the walk continues at the
                // target.
                DecOp::Jump(t) => {
                    cyc += base;
                    upc = t;
                }
                // Conditional branches become guards: not-taken falls
                // through in the block, taken exits it.
                DecOp::JumpUZero(_)
                | DecOp::JumpUNotZero(_)
                | DecOp::JumpRegNumIsPc(_)
                | DecOp::JumpIf { .. } => {
                    push_op!(base, op);
                    upc += 1;
                }
                DecOp::Read { .. } | DecOp::Write { .. } | DecOp::PhysRead | DecOp::PhysWrite => {
                    push_op!(mem, op);
                    upc += 1;
                }
                DecOp::Call(t) => {
                    push_op!(base, op);
                    callstack.push(upc + 1);
                    upc = t;
                }
                DecOp::Ret => match callstack.pop() {
                    // Matched to a call followed earlier in this block:
                    // the pop is statically known to land there.
                    Some(ret) => {
                        push_op!(base, op);
                        upc = ret;
                    }
                    // Return through a stack frame the block did not
                    // push: the target is dynamic, end the block.
                    None => break,
                },
                DecOp::DecodeNext => {
                    push_op!(base, op);
                    upc = fetch_entry;
                }
                // Everything else ends the block: dispatches (dynamic
                // successor), halt/fault, dynamic or side-effecting
                // privileged-register ops, TB flushes (which must also
                // invalidate this cache), bad-constant traps.
                _ => break,
            }
        }
        if cyc == 0 {
            return None;
        }
        Some(Superblock {
            head,
            ops,
            exit_upc: upc,
            total_cost: cyc,
        })
    }

    /// The block's static microcycle charge for one full guard-free pass
    /// — [`Superblock::total_cost`] as the `u64` the engines count in.
    /// Excludes only data-dependent PTE-walk charges.
    pub fn static_cycles(&self) -> u64 {
        self.total_cost as u64
    }
}

/// How one superblock execution left the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SbExit {
    /// Keep going at the (already updated) micro-PC and re-probe the
    /// cache there — the block ran to an exit that made progress (its
    /// end, a taken guard, an exception entry), so chaining terminates.
    Chain,
    /// Resume the per-op loop at the micro-PC without re-probing: the
    /// block bailed on a deadline check (at entry, before executing
    /// anything; or after a PTE walk pushed the cycle count past what
    /// the static total allowed for), so the per-op loop must make the
    /// progress.
    Fallback,
    /// Propagate a run-loop exit.
    Exit(Option<crate::RunExit>),
}

/// The per-machine superblock cache: blocks by head address plus the
/// profiling counters that decide when to form one. Keyed on
/// [`ControlStore::version`](atum_ucode::ControlStore::version) and the
/// machine's TB-event epoch; a mismatch on either empties the cache
/// before any block can be dispatched.
#[derive(Debug)]
pub struct SbCache {
    version: u64,
    epoch: u64,
    fetch_entry: u32,
    counts: Vec<u16>,
    blocks: Vec<Option<Box<Superblock>>>,
    formed: usize,
}

impl SbCache {
    /// A placeholder that can never match a real store version, forcing a
    /// reset on first use (mirrors [`FastImage::empty`]).
    pub(crate) fn empty() -> SbCache {
        SbCache {
            version: u64::MAX,
            epoch: 0,
            fetch_entry: 0,
            counts: Vec::new(),
            blocks: Vec::new(),
            formed: 0,
        }
    }

    /// The store version the cached blocks were formed against.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The TB-event epoch the cache was (re)built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The resolved `Entry::Fetch` address blocks were formed against —
    /// where an in-block instruction boundary continues.
    pub fn fetch_entry(&self) -> u32 {
        self.fetch_entry
    }

    /// Number of blocks currently formed.
    pub fn len(&self) -> usize {
        self.formed
    }

    /// Whether no blocks are formed.
    pub fn is_empty(&self) -> bool {
        self.formed == 0
    }

    /// The cached blocks, in head-address order — the inspection point
    /// for the `superblock` equivalence pass in `atum-mclint`.
    pub fn blocks(&self) -> impl Iterator<Item = &Superblock> {
        self.blocks.iter().filter_map(|b| b.as_deref())
    }

    /// The block headed at `upc`, if one is formed.
    pub fn get(&self, upc: u32) -> Option<&Superblock> {
        self.blocks.get(upc as usize)?.as_deref()
    }

    /// Drops every block and counter, rekeying to `version`/`epoch` with
    /// the store's current geometry.
    pub(crate) fn reset(&mut self, version: u64, epoch: u64, fetch_entry: u32, len: usize) {
        self.version = version;
        self.epoch = epoch;
        self.fetch_entry = fetch_entry;
        self.counts.clear();
        self.counts.resize(len, 0);
        self.blocks.clear();
        self.blocks.resize_with(len, || None);
        self.formed = 0;
    }

    /// The dispatch-time probe: profiles `upc` as a head candidate,
    /// forms a block once it crosses [`HOT_THRESHOLD`], and returns the
    /// block to dispatch if one exists. A TB-event epoch mismatch empties
    /// the cache first — a stale block is never returned.
    #[inline]
    pub(crate) fn probe(&mut self, upc: u32, img: &FastImage, epoch: u64) -> Option<&Superblock> {
        if self.epoch != epoch {
            let (v, fe, len) = (self.version, self.fetch_entry, self.counts.len());
            self.reset(v, epoch, fe, len);
        }
        let i = upc as usize;
        if i >= self.blocks.len() {
            return None;
        }
        if self.blocks[i].is_some() {
            return self.blocks[i].as_deref();
        }
        let c = self.counts[i];
        if c == NEVER {
            return None;
        }
        if c + 1 < HOT_THRESHOLD {
            self.counts[i] = c + 1;
            return None;
        }
        match Superblock::form(img, self.fetch_entry, upc) {
            Some(sb) => {
                self.formed += 1;
                self.blocks[i] = Some(Box::new(sb));
                self.blocks[i].as_deref()
            }
            None => {
                self.counts[i] = NEVER;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_ucode::Entry;

    #[test]
    fn fetch_head_forms_a_block_ending_at_a_dispatch() {
        let cs = atum_ucode::stock::build();
        let img = FastImage::build(&cs);
        let fetch = cs.entry(Entry::Fetch);
        let sb = Superblock::form(&img, fetch, fetch).expect("fetch path forms a block");
        assert_eq!(sb.head, fetch);
        assert!(!sb.ops.is_empty());
        assert!(sb.total_cost as usize >= sb.ops.len());
        // Cycle offsets are strictly increasing and end at the total
        // minus any trailing folded jumps.
        for w in sb.ops.windows(2) {
            assert!(w[0].cyc < w[1].cyc);
        }
        assert!(sb.ops.last().unwrap().cyc <= sb.total_cost);
        // The block must end at a real op the per-op loop executes.
        assert!(matches!(
            img.ops[sb.exit_upc as usize],
            DecOp::DispatchOpcode | DecOp::DispatchSpec(_) | DecOp::Halt | DecOp::Fault(_)
        ));
    }

    #[test]
    fn formation_is_deterministic() {
        let cs = atum_ucode::stock::build();
        let img = FastImage::build(&cs);
        let fetch = cs.entry(Entry::Fetch);
        assert_eq!(
            Superblock::form(&img, fetch, fetch),
            Superblock::form(&img, fetch, fetch)
        );
    }

    #[test]
    fn dispatch_heads_never_form_empty_blocks() {
        let cs = atum_ucode::stock::build();
        let img = FastImage::build(&cs);
        let fetch = cs.entry(Entry::Fetch);
        for b in 0..=255u8 {
            if let Some(sb) = Superblock::form(&img, fetch, cs.opcode_target(b)) {
                assert!(sb.static_cycles() > 0);
            }
        }
    }

    #[test]
    fn jump_to_self_is_a_one_cycle_block() {
        let mut cs = atum_ucode::ControlStore::new();
        let addr = cs.append_routine(
            "spin",
            vec![atum_ucode::MicroOp::Jump(atum_ucode::Target::Abs(0))],
        );
        let img = FastImage::build(&cs);
        let sb = Superblock::form(&img, 0, addr).expect("self-jump forms");
        assert_eq!(sb.exit_upc, addr, "loop closes back on its own head");
        assert_eq!(sb.static_cycles(), 1);
        assert!(sb.ops.is_empty(), "a pure jump chain has no elements");
    }

    #[test]
    fn cache_probe_forms_only_past_threshold() {
        let cs = atum_ucode::stock::build();
        let img = FastImage::build(&cs);
        let fetch = cs.entry(Entry::Fetch);
        let mut cache = SbCache::empty();
        cache.reset(cs.version(), 0, fetch, img.ops.len());
        for _ in 0..HOT_THRESHOLD - 1 {
            assert!(cache.probe(fetch, &img, 0).is_none());
        }
        assert!(cache.probe(fetch, &img, 0).is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn epoch_mismatch_empties_the_cache() {
        let cs = atum_ucode::stock::build();
        let img = FastImage::build(&cs);
        let fetch = cs.entry(Entry::Fetch);
        let mut cache = SbCache::empty();
        cache.reset(cs.version(), 0, fetch, img.ops.len());
        for _ in 0..HOT_THRESHOLD {
            cache.probe(fetch, &img, 0);
        }
        assert_eq!(cache.len(), 1);
        assert!(
            cache.probe(fetch, &img, 1).is_none(),
            "a TB event empties the cache before any block dispatches"
        );
        assert_eq!(cache.len(), 0);
    }
}
