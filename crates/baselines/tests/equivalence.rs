//! Differential testing: the microcoded machine against the independent
//! architectural simulator. Random programs must leave identical
//! architectural state on both — this is the oracle check that keeps the
//! 700-word stock microcode honest.

use atum_baselines::{ArchExit, ArchSim};
use atum_machine::{Machine, MemLayout, RunExit};
use proptest::prelude::*;

const ORG: u32 = 0x1000;
const SCRATCH: u32 = 0x4000;

/// One generated instruction as assembly text.
#[derive(Debug, Clone)]
struct Insn(String);

fn reg() -> impl Strategy<Value = String> {
    (0u8..10).prop_map(|r| format!("r{r}"))
}

/// A read operand: register, literal, immediate, or scratch memory.
fn src() -> impl Strategy<Value = String> {
    prop_oneof![
        reg(),
        (0u32..64).prop_map(|v| format!("#{v}")),
        any::<i32>().prop_map(|v| format!("#{v}")),
        (0u32..32).prop_map(|o| format!("@#{:#x}", SCRATCH + o * 4)),
        (0u32..32).prop_map(|o| format!("{}(r10)", o * 4)),
    ]
}

/// A read operand for byte-sized instructions (immediates must fit).
fn bsrc() -> impl Strategy<Value = String> {
    prop_oneof![
        reg(),
        (0u32..64).prop_map(|v| format!("#{v}")),
        (-128i32..256).prop_map(|v| format!("#{v}")),
        (0u32..32).prop_map(|o| format!("@#{:#x}", SCRATCH + o * 4)),
        (0u32..32).prop_map(|o| format!("{}(r10)", o * 4)),
    ]
}

/// A write operand: register or scratch memory.
fn dst() -> impl Strategy<Value = String> {
    prop_oneof![
        reg(),
        (0u32..32).prop_map(|o| format!("@#{:#x}", SCRATCH + o * 4)),
        (0u32..32).prop_map(|o| format!("{}(r10)", o * 4)),
    ]
}

fn insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (src(), dst()).prop_map(|(a, b)| Insn(format!("movl {a}, {b}"))),
        (bsrc(), dst()).prop_map(|(a, b)| Insn(format!("movb {a}, {b}"))),
        (bsrc(), dst()).prop_map(|(a, b)| Insn(format!("movw {a}, {b}"))),
        (src(), reg()).prop_map(|(a, b)| Insn(format!("addl2 {a}, {b}"))),
        (src(), src(), dst()).prop_map(|(a, b, c)| Insn(format!("addl3 {a}, {b}, {c}"))),
        (src(), src(), dst()).prop_map(|(a, b, c)| Insn(format!("subl3 {a}, {b}, {c}"))),
        (src(), src(), dst()).prop_map(|(a, b, c)| Insn(format!("mull3 {a}, {b}, {c}"))),
        (src(), src(), dst()).prop_map(|(a, b, c)| Insn(format!("xorl3 {a}, {b}, {c}"))),
        (src(), src(), dst()).prop_map(|(a, b, c)| Insn(format!("bisl3 {a}, {b}, {c}"))),
        (src(), src(), dst()).prop_map(|(a, b, c)| Insn(format!("bicl3 {a}, {b}, {c}"))),
        ((-8i32..8), src(), dst()).prop_map(|(n, b, c)| Insn(format!("ashl #{n}, {b}, {c}"))),
        (src(), src()).prop_map(|(a, b)| Insn(format!("cmpl {a}, {b}"))),
        (bsrc(), bsrc()).prop_map(|(a, b)| Insn(format!("cmpb {a}, {b}"))),
        src().prop_map(|a| Insn(format!("tstl {a}"))),
        reg().prop_map(|a| Insn(format!("incl {a}"))),
        reg().prop_map(|a| Insn(format!("decl {a}"))),
        (bsrc(), dst()).prop_map(|(a, b)| Insn(format!("movzbl {a}, {b}"))),
        (bsrc(), dst()).prop_map(|(a, b)| Insn(format!("cvtbl {a}, {b}"))),
        (src(), dst()).prop_map(|(a, b)| Insn(format!("mnegl {a}, {b}"))),
        (src(), dst()).prop_map(|(a, b)| Insn(format!("mcoml {a}, {b}"))),
        (src(), src()).prop_map(|(a, b)| Insn(format!("bitl {a}, {b}"))),
    ]
}

/// A control-flow block: straight-line, a bounded `sobgtr` loop, or a
/// conditional skip. Loops use `r11` as their counter (excluded from the
/// random operand pool, which stops at r9) so termination is guaranteed.
#[derive(Debug, Clone)]
enum Block {
    Straight(Vec<Insn>),
    Loop {
        count: u8,
        body: Vec<Insn>,
    },
    Cond {
        a: String,
        b: String,
        body: Vec<Insn>,
    },
}

fn block() -> impl Strategy<Value = Block> {
    prop_oneof![
        4 => proptest::collection::vec(insn(), 1..8).prop_map(Block::Straight),
        1 => (1u8..6, proptest::collection::vec(insn(), 1..5))
            .prop_map(|(count, body)| Block::Loop { count, body }),
        1 => (src(), src(), proptest::collection::vec(insn(), 1..5))
            .prop_map(|(a, b, body)| Block::Cond { a, b, body }),
    ]
}

fn program() -> impl Strategy<Value = String> {
    proptest::collection::vec(block(), 1..8).prop_map(|blocks| {
        let mut src = String::from("start:\n");
        // r10 anchors the displacement operands at the scratch buffer.
        src.push_str(&format!("        movl #{SCRATCH:#x}, r10\n"));
        for (bi, b) in blocks.iter().enumerate() {
            match b {
                Block::Straight(insns) => {
                    for Insn(i) in insns {
                        src.push_str(&format!("        {i}\n"));
                    }
                }
                Block::Loop { count, body } => {
                    src.push_str(&format!("        movl #{count}, r11\n"));
                    src.push_str(&format!("loop{bi}:\n"));
                    for Insn(i) in body {
                        src.push_str(&format!("        {i}\n"));
                    }
                    src.push_str(&format!("        sobgtr r11, loop{bi}\n"));
                }
                Block::Cond { a, b, body } => {
                    src.push_str(&format!("        cmpl {a}, {b}\n"));
                    src.push_str(&format!("        beql skip{bi}\n"));
                    for Insn(i) in body {
                        src.push_str(&format!("        {i}\n"));
                    }
                    src.push_str(&format!("skip{bi}:\n"));
                }
            }
        }
        src.push_str("        halt\n");
        src
    })
}

fn run_machine(img: &atum_asm::Image) -> Machine {
    let mut m = Machine::new(MemLayout::small());
    for (a, b) in img.segments() {
        m.write_phys(*a, b).unwrap();
    }
    m.set_gpr(14, 0x8000);
    m.set_gpr(10, SCRATCH); // harmless; program re-sets it
    m.set_pc(ORG);
    assert_eq!(m.run(10_000_000), RunExit::Halted, "machine did not halt");
    m
}

fn run_sim(img: &atum_asm::Image) -> ArchSim {
    let mut sim = ArchSim::new();
    sim.load_image(img);
    sim.set_pc(ORG);
    sim.set_reg(14, 0x8000);
    sim.set_reg(10, SCRATCH);
    sim.stop_on_halt = true;
    assert_eq!(
        sim.run(1_000_000),
        ArchExit::Exited,
        "simulator did not halt"
    );
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn machine_and_simulator_agree(src in program()) {
        let full = format!(".org {ORG:#x}\n{src}\n");
        let img = atum_asm::assemble(&full).expect("generated program assembles");
        let m = run_machine(&img);
        let sim = run_sim(&img);

        for r in 0..14u8 {
            prop_assert_eq!(
                m.gpr(r), sim.reg(r),
                "r{} differs after:\n{}", r, src
            );
        }
        let psl = m.psl();
        let machine_nzvc = (psl.n(), psl.z(), psl.v(), psl.c());
        prop_assert_eq!(machine_nzvc, sim.nzvc(), "flags differ after:\n{}", src);

        // Scratch memory must match too.
        let mbytes = m.read_phys(SCRATCH, 128).unwrap();
        for (i, b) in mbytes.iter().enumerate() {
            prop_assert_eq!(
                *b,
                sim.peek(SCRATCH + i as u32),
                "scratch byte {} differs after:\n{}",
                i,
                src
            );
        }
    }
}

#[test]
fn data_reference_streams_match_on_workloads() {
    // The ATUM user-mode data-reference stream of a solo process equals
    // the architectural simulator's stream for the same program —
    // record-for-record (quantum long enough that no timer fires).
    use atum_core::{RecordKind, Tracer};

    for w in [
        atum_workloads::list_chase("l", 64, 300),
        atum_workloads::lexer("x", 256, 1),
        atum_workloads::fib_recursive("f", 10),
    ] {
        let image = atum_os::BootImage::builder()
            .user_program(&w.source)
            .quantum(500_000_000)
            .build()
            .unwrap();
        let mut m = Machine::new(image.memory_layout());
        image.load_into(&mut m).unwrap();
        let tracer = Tracer::attach(&mut m).unwrap();
        tracer.set_enabled(&mut m, true);
        assert_eq!(m.run(10_000_000_000), RunExit::Halted);
        let atum_refs: Vec<(u32, RecordKind, u32)> = tracer
            .extract(&m)
            .unwrap()
            .refs()
            .filter(|r| !r.is_kernel() && r.kind().is_data())
            .map(|r| (r.addr, r.kind(), r.size()))
            .collect();

        let img = atum_asm::assemble(&format!(".org 0x200\n{}\n", w.source)).unwrap();
        let mut sim = ArchSim::new();
        sim.load_image(&img);
        sim.set_pc(img.symbol("start").unwrap_or(0x200));
        sim.enable_trace(1);
        assert_eq!(sim.run(100_000_000), ArchExit::Exited);
        let sim_refs: Vec<(u32, RecordKind, u32)> = sim
            .trace()
            .refs()
            .filter(|r| r.kind().is_data())
            .map(|r| (r.addr, r.kind(), r.size()))
            .collect();

        assert_eq!(
            atum_refs.len(),
            sim_refs.len(),
            "{}: ref counts differ",
            w.name
        );
        for (i, (a, s)) in atum_refs.iter().zip(sim_refs.iter()).enumerate() {
            assert_eq!(a, s, "{}: data ref #{i} differs", w.name);
        }
    }
}
