//! The trap-driven (T-bit) software tracer — the pre-ATUM state of the
//! art, measured on the same machine ATUM runs on.
//!
//! Every user-mode instruction takes a trace trap into the MOSS kernel's
//! logging handler, which appends the trapped PC to an in-kernel buffer.
//! The measured microcycle ratio against an untraced run of the same
//! workload is the software-tracing slowdown the paper compares against;
//! what the buffer *contains* (PCs only, user instructions only) is the
//! completeness gap.

use atum_machine::{Machine, RunExit};
use atum_os::{BootImage, KernelOptions, TbitMode};
use std::fmt;

/// The outcome of a T-bit tracing measurement.
#[derive(Debug, Clone)]
pub struct TbitResult {
    /// Microcycles of the untraced reference run.
    pub base_cycles: u64,
    /// Microcycles of the T-bit traced run.
    pub traced_cycles: u64,
    /// PCs captured by the kernel handler.
    pub pcs: Vec<u32>,
    /// Number of trace traps the buffer counted (may exceed `pcs.len()`
    /// if the buffer filled).
    pub trap_count: u32,
}

impl TbitResult {
    /// The measured slowdown factor.
    pub fn slowdown(&self) -> f64 {
        self.traced_cycles as f64 / self.base_cycles.max(1) as f64
    }
}

impl fmt::Display for TbitResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T-bit tracing: {:.1}x slowdown, {} PCs captured",
            self.slowdown(),
            self.pcs.len()
        )
    }
}

/// Errors from the measurement.
#[derive(Debug, Clone)]
pub enum TbitError {
    /// Boot image construction failed.
    Boot(String),
    /// A run did not halt.
    Run(RunExit),
}

impl fmt::Display for TbitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TbitError::Boot(e) => write!(f, "boot: {e}"),
            TbitError::Run(e) => write!(f, "run did not halt: {e}"),
        }
    }
}

impl std::error::Error for TbitError {}

/// Runs a workload twice — untraced and under T-bit tracing — and
/// reports the slowdown and the captured PC trace.
#[derive(Debug, Clone)]
pub struct TbitTracer {
    /// Buffer size for the kernel's PC log.
    pub swtrace_bytes: u32,
    /// Cycle budget per run.
    pub budget: u64,
    /// Scheduling quantum: long by default so the measurement isolates
    /// per-instruction trap cost rather than scheduler dilation.
    pub quantum: u32,
}

impl Default for TbitTracer {
    fn default() -> TbitTracer {
        TbitTracer {
            swtrace_bytes: 1 << 20,
            budget: 50_000_000_000,
            quantum: 1_000_000,
        }
    }
}

impl TbitTracer {
    /// Measures a single-program workload.
    ///
    /// # Errors
    ///
    /// [`TbitError`] if either system fails to boot or halt.
    pub fn measure(&self, user_source: &str) -> Result<TbitResult, TbitError> {
        // Reference run: stock kernel, no T bit.
        let base = BootImage::builder()
            .user_program(user_source)
            .quantum(self.quantum)
            .build()
            .map_err(|e| TbitError::Boot(e.to_string()))?;
        let mut m = Machine::new(base.memory_layout());
        base.load_into(&mut m)
            .map_err(|e| TbitError::Boot(e.to_string()))?;
        match m.run(self.budget) {
            RunExit::Halted => {}
            other => return Err(TbitError::Run(other)),
        }
        let base_cycles = m.cycles();

        // Traced run: LogPc kernel, T bit set in every process PSL.
        let traced = BootImage::builder()
            .user_program(user_source)
            .quantum(self.quantum)
            .kernel_options(KernelOptions {
                tbit: TbitMode::LogPc,
                swtrace_bytes: self.swtrace_bytes,
            })
            .trace_trap_all(true)
            .build()
            .map_err(|e| TbitError::Boot(e.to_string()))?;
        let mut m = Machine::new(traced.memory_layout());
        traced
            .load_into(&mut m)
            .map_err(|e| TbitError::Boot(e.to_string()))?;
        match m.run(self.budget) {
            RunExit::Halted => {}
            other => return Err(TbitError::Run(other)),
        }
        let traced_cycles = m.cycles();

        // Extract the PC log from kernel memory.
        let kernel = traced.kernel();
        let read_long = |m: &Machine, sym: &str| -> u32 {
            let pa = kernel.symbol(sym).expect("kernel symbol") - atum_os::SYSTEM_VA;
            u32::from_le_bytes(m.read_phys(pa, 4).expect("kernel read").try_into().unwrap())
        };
        let trap_count = read_long(&m, "swt_count");
        let buf_va = read_long(&m, "swt_base");
        let ptr_va = read_long(&m, "swt_ptr");
        let used = ptr_va.saturating_sub(buf_va);
        let bytes = m
            .read_phys(buf_va - atum_os::SYSTEM_VA, used)
            .expect("buffer read");
        let pcs = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();

        Ok(TbitResult {
            base_cycles,
            traced_cycles,
            pcs,
            trap_count,
        })
    }
}
