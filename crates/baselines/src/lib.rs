//! # atum-baselines — the tracing techniques ATUM was compared against
//!
//! Two comparators reproduce the paper's technique-comparison table:
//!
//! * [`ArchSim`] — a pure architectural (instruction-level) simulator of
//!   SVX, the "simulate the machine and write down the addresses"
//!   approach. It sees only a single user program: no OS, no interrupts,
//!   no other processes — exactly the blind spot the paper calls out. It
//!   doubles as an independent *oracle* for the microcoded machine:
//!   random programs must produce identical architectural state on both.
//! * [`TbitTracer`] — trap-driven software tracing: every user
//!   instruction takes a T-bit trace trap into a MOSS kernel handler that
//!   logs the PC. Measured on the same microcoded machine, it yields the
//!   software-tracing slowdown ATUM is compared against (and it captures
//!   PCs only — no operand addresses, no OS references).
//!
//! The third comparator, the ATUM patch itself (in both register-scratch
//! and state-spilling styles), lives in `atum-core`; `atum-analysis`
//! assembles the comparison table from all of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod archsim;
mod tbit;

pub use archsim::{ArchExit, ArchSim, SimFault};
pub use tbit::{TbitError, TbitResult, TbitTracer};
