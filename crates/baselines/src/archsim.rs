//! The architectural simulator: an independent, instruction-level
//! implementation of SVX semantics over a sparse address space.
//!
//! Deliberately shares no execution code with the micro-engine — it
//! decodes with [`DecodedInsn`] and implements semantics from the
//! architecture manual a second time, which is what makes it a usable
//! oracle. Trace emission approximates the hardware's reference stream:
//! one I-reference per aligned instruction longword entered, one
//! D-reference per operand memory access (including indirection words).

use atum_arch::{DataSize, DecodeError, DecodedInsn, Opcode, Operand, PAGE_SHIFT};
use atum_core::{RecordKind, Trace, TraceRecord};
use std::collections::HashMap;
use std::fmt;

/// A simulator fault (the simulator kills the program, like a bare
/// user-level tracer would).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimFault {
    /// Instruction decode failed.
    Decode(DecodeError),
    /// An instruction this user-level simulator does not support.
    Unsupported(Opcode),
    /// Integer divide by zero.
    DivideByZero,
    /// An unknown `chmk` code.
    BadSyscall(u16),
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimFault::Decode(e) => write!(f, "decode: {e}"),
            SimFault::Unsupported(op) => write!(f, "unsupported instruction {op}"),
            SimFault::DivideByZero => f.write_str("divide by zero"),
            SimFault::BadSyscall(c) => write!(f, "unknown syscall {c}"),
        }
    }
}

impl std::error::Error for SimFault {}

/// How a simulation run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchExit {
    /// The program exited (`chmk #0`, or `halt` in bare mode).
    Exited,
    /// The instruction budget ran out.
    InsnLimit,
    /// The program faulted.
    Fault(SimFault),
}

/// Condition codes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Flags {
    n: bool,
    z: bool,
    v: bool,
    c: bool,
}

/// The architectural simulator.
#[derive(Debug)]
pub struct ArchSim {
    regs: [u32; 16],
    flags: Flags,
    pages: HashMap<u32, Box<[u8; 512]>>,
    trace: Trace,
    emit: bool,
    pid: u8,
    cur_iblock: u32,
    console: Vec<u8>,
    insns: u64,
    /// Treat `halt` as exit instead of a fault (bare-metal oracle mode).
    pub stop_on_halt: bool,
}

impl ArchSim {
    /// Creates an empty simulator with the PC at 0 and SP at the MOSS
    /// user stack top.
    pub fn new() -> ArchSim {
        let mut s = ArchSim {
            regs: [0; 16],
            flags: Flags::default(),
            pages: HashMap::new(),
            trace: Trace::new(),
            emit: false,
            pid: 1,
            cur_iblock: u32::MAX,
            console: Vec::new(),
            insns: 0,
            stop_on_halt: false,
        };
        s.regs[14] = atum_os::USER_STACK_TOP;
        s
    }

    /// Loads an assembled image into the address space.
    pub fn load_image(&mut self, image: &atum_asm::Image) {
        for (addr, bytes) in image.segments() {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8_raw(addr + i as u32, *b);
            }
        }
    }

    /// Sets the PC.
    pub fn set_pc(&mut self, pc: u32) {
        self.regs[15] = pc;
        self.cur_iblock = u32::MAX;
    }

    /// A register's value.
    pub fn reg(&self, n: u8) -> u32 {
        self.regs[(n & 0xF) as usize]
    }

    /// Sets a register.
    pub fn set_reg(&mut self, n: u8, v: u32) {
        self.regs[(n & 0xF) as usize] = v;
    }

    /// The condition codes as (N, Z, V, C).
    pub fn nzvc(&self) -> (bool, bool, bool, bool) {
        (self.flags.n, self.flags.z, self.flags.v, self.flags.c)
    }

    /// Enables trace emission with the given pid stamp.
    pub fn enable_trace(&mut self, pid: u8) {
        self.emit = true;
        self.pid = pid;
    }

    /// The collected trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Takes console output so far.
    pub fn take_console_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.console)
    }

    /// Instructions executed so far.
    pub fn insns(&self) -> u64 {
        self.insns
    }

    /// Inspects a byte of simulated memory (unmapped pages read as 0).
    pub fn peek(&self, addr: u32) -> u8 {
        self.read_u8_raw(addr)
    }

    /// Runs up to `max_insns` instructions.
    pub fn run(&mut self, max_insns: u64) -> ArchExit {
        for _ in 0..max_insns {
            match self.step() {
                Ok(true) => return ArchExit::Exited,
                Ok(false) => {}
                Err(f) => return ArchExit::Fault(f),
            }
        }
        ArchExit::InsnLimit
    }

    // ── Memory ────────────────────────────────────────────────────────

    fn read_u8_raw(&self, addr: u32) -> u8 {
        self.pages
            .get(&(addr >> PAGE_SHIFT))
            .map_or(0, |p| p[(addr & 511) as usize])
    }

    fn write_u8_raw(&mut self, addr: u32, v: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; 512]));
        page[(addr & 511) as usize] = v;
    }

    fn read_le_raw(&self, addr: u32, size: DataSize) -> u32 {
        let mut v = 0u32;
        for i in 0..size.bytes() {
            v |= (self.read_u8_raw(addr.wrapping_add(i)) as u32) << (8 * i);
        }
        v
    }

    fn write_le_raw(&mut self, addr: u32, size: DataSize, v: u32) {
        for i in 0..size.bytes() {
            self.write_u8_raw(addr.wrapping_add(i), (v >> (8 * i)) as u8);
        }
    }

    fn data_read(&mut self, addr: u32, size: DataSize) -> u32 {
        if self.emit {
            self.trace.push(TraceRecord::new(
                RecordKind::Read,
                addr,
                size.bytes(),
                self.pid,
                false,
            ));
        }
        self.read_le_raw(addr, size)
    }

    fn data_write(&mut self, addr: u32, size: DataSize, v: u32) {
        if self.emit {
            self.trace.push(TraceRecord::new(
                RecordKind::Write,
                addr,
                size.bytes(),
                self.pid,
                false,
            ));
        }
        self.write_le_raw(addr, size, v);
    }

    /// Emits the I-reference for the longword containing `addr` if it is
    /// a new block (approximating the machine's prefetch buffer).
    fn touch_istream(&mut self, addr: u32) {
        let block = addr & !3;
        if block != self.cur_iblock {
            self.cur_iblock = block;
            if self.emit {
                self.trace.push(TraceRecord::new(
                    RecordKind::IFetch,
                    block,
                    4,
                    self.pid,
                    false,
                ));
            }
        }
    }

    // ── Execution ─────────────────────────────────────────────────────

    /// Executes one instruction. `Ok(true)` means the program exited.
    ///
    /// # Errors
    ///
    /// A [`SimFault`] aborts the program.
    pub fn step(&mut self) -> Result<bool, SimFault> {
        let pc = self.regs[15];
        // Decode, touching istream longwords as the decoder consumes them.
        let insn = {
            let pages = &self.pages;
            let mut touched = Vec::new();
            let mut fetch = |a: u32| {
                touched.push(a);
                Some(
                    pages
                        .get(&(a >> PAGE_SHIFT))
                        .map_or(0, |p| p[(a & 511) as usize]),
                )
            };
            let insn = DecodedInsn::decode(pc, &mut fetch).map_err(SimFault::Decode)?;
            for a in touched {
                self.touch_istream(a);
            }
            insn
        };
        self.regs[15] = pc.wrapping_add(insn.len);
        self.insns += 1;
        let exited = self.exec(&insn)?;
        if self.regs[15] != pc.wrapping_add(insn.len) {
            // A branch happened; force a fresh I-block on the next fetch.
            self.cur_iblock = u32::MAX;
        }
        Ok(exited)
    }

    fn exec(&mut self, insn: &DecodedInsn) -> Result<bool, SimFault> {
        use Opcode::*;
        let ops = &insn.operands;
        match insn.opcode {
            Nop => {}
            Halt => {
                if self.stop_on_halt {
                    return Ok(true);
                }
                return Err(SimFault::Unsupported(Halt));
            }
            Chmk => {
                let code = self.rd(&ops[0], DataSize::Word)? as u16;
                return self.syscall(code);
            }
            Bpt | Rei | Svpctx | Ldpctx | Mtpr | Mfpr => {
                return Err(SimFault::Unsupported(insn.opcode))
            }

            Movb => self.mov(ops, DataSize::Byte)?,
            Movw => self.mov(ops, DataSize::Word)?,
            Movl => self.mov(ops, DataSize::Long)?,
            Movzbl => {
                let v = self.rd(&ops[0], DataSize::Byte)? & 0xFF;
                self.set_logic(v, DataSize::Long);
                self.wr(&ops[1], DataSize::Long, v)?;
            }
            Movzwl => {
                let v = self.rd(&ops[0], DataSize::Word)? & 0xFFFF;
                self.set_logic(v, DataSize::Long);
                self.wr(&ops[1], DataSize::Long, v)?;
            }
            Cvtbl => {
                let v = DataSize::Byte.sign_extend(self.rd(&ops[0], DataSize::Byte)?);
                self.set_logic(v, DataSize::Long);
                self.wr(&ops[1], DataSize::Long, v)?;
            }
            Cvtwl => {
                let v = DataSize::Word.sign_extend(self.rd(&ops[0], DataSize::Word)?);
                self.set_logic(v, DataSize::Long);
                self.wr(&ops[1], DataSize::Long, v)?;
            }
            Cvtlb => {
                let v = self.rd(&ops[0], DataSize::Long)?;
                self.set_logic(v & 0xFF, DataSize::Byte);
                self.wr(&ops[1], DataSize::Byte, v)?;
            }
            Cvtlw => {
                let v = self.rd(&ops[0], DataSize::Long)?;
                self.set_logic(v & 0xFFFF, DataSize::Word);
                self.wr(&ops[1], DataSize::Word, v)?;
            }
            Mcoml => {
                let v = !self.rd(&ops[0], DataSize::Long)?;
                self.set_logic(v, DataSize::Long);
                self.wr(&ops[1], DataSize::Long, v)?;
            }
            Mnegl => {
                let b = self.rd(&ops[0], DataSize::Long)?;
                let (r, fl) = sub(0, b, DataSize::Long);
                self.flags = fl;
                self.wr(&ops[1], DataSize::Long, r)?;
            }
            Moval => {
                let a = self.addr_of(&ops[0], DataSize::Long)?;
                self.set_logic(a, DataSize::Long);
                self.wr(&ops[1], DataSize::Long, a)?;
            }
            Movab => {
                let a = self.addr_of(&ops[0], DataSize::Byte)?;
                self.set_logic(a, DataSize::Long);
                self.wr(&ops[1], DataSize::Long, a)?;
            }
            Pushl => {
                let v = self.rd(&ops[0], DataSize::Long)?;
                self.set_logic(v, DataSize::Long);
                self.push(v);
            }
            Pushal => {
                let a = self.addr_of(&ops[0], DataSize::Long)?;
                self.set_logic(a, DataSize::Long);
                self.push(a);
            }
            Clrb => {
                self.set_logic(0, DataSize::Byte);
                self.wr(&ops[0], DataSize::Byte, 0)?;
            }
            Clrw => {
                self.set_logic(0, DataSize::Word);
                self.wr(&ops[0], DataSize::Word, 0)?;
            }
            Clrl => {
                self.set_logic(0, DataSize::Long);
                self.wr(&ops[0], DataSize::Long, 0)?;
            }

            Addl2 | Addl3 => self.binop(ops, insn.opcode == Addl3, add)?,
            Subl2 | Subl3 => self.binop(ops, insn.opcode == Subl3, |a, b, s| sub(b, a, s))?,
            Mull2 | Mull3 => self.binop(ops, insn.opcode == Mull3, mul)?,
            Divl2 | Divl3 => {
                let divisor = self.rd(&ops[0], DataSize::Long)?;
                let dividend = self.rd(&ops[1], DataSize::Long)?;
                if divisor == 0 {
                    return Err(SimFault::DivideByZero);
                }
                let (r, fl) = div(divisor, dividend);
                self.flags = fl;
                let dst = if insn.opcode == Divl3 {
                    &ops[2]
                } else {
                    &ops[1]
                };
                self.wr(dst, DataSize::Long, r)?;
            }
            Incl => {
                let v = self.rd(&ops[0], DataSize::Long)?;
                let (r, fl) = add(1, v, DataSize::Long);
                self.flags = fl;
                self.wr(&ops[0], DataSize::Long, r)?;
            }
            Decl => {
                let v = self.rd(&ops[0], DataSize::Long)?;
                let (r, fl) = sub(v, 1, DataSize::Long);
                self.flags = fl;
                self.wr(&ops[0], DataSize::Long, r)?;
            }
            Ashl => {
                let cnt = DataSize::Byte.sign_extend(self.rd(&ops[0], DataSize::Byte)?) as i32;
                let src = self.rd(&ops[1], DataSize::Long)?;
                let (r, v) = ash(cnt, src);
                self.flags = Flags {
                    n: (r as i32) < 0,
                    z: r == 0,
                    v,
                    c: false,
                };
                self.wr(&ops[2], DataSize::Long, r)?;
            }
            Xorl2 | Xorl3 => self.binop_logic(ops, insn.opcode == Xorl3, |a, b| a ^ b)?,
            Bisl2 | Bisl3 => self.binop_logic(ops, insn.opcode == Bisl3, |a, b| a | b)?,
            Bicl2 | Bicl3 => self.binop_logic(ops, insn.opcode == Bicl3, |a, b| b & !a)?,

            Cmpb => self.cmp(ops, DataSize::Byte)?,
            Cmpw => self.cmp(ops, DataSize::Word)?,
            Cmpl => self.cmp(ops, DataSize::Long)?,
            Tstb => self.tst(ops, DataSize::Byte)?,
            Tstw => self.tst(ops, DataSize::Word)?,
            Tstl => self.tst(ops, DataSize::Long)?,
            Bitl => {
                let a = self.rd(&ops[0], DataSize::Long)?;
                let b = self.rd(&ops[1], DataSize::Long)?;
                self.set_logic(a & b, DataSize::Long);
            }

            Brb | Brw => self.branch(&ops[0]),
            Bneq => self.branch_if(!self.flags.z, &ops[0]),
            Beql => self.branch_if(self.flags.z, &ops[0]),
            Bgtr => self.branch_if(!(self.flags.n || self.flags.z), &ops[0]),
            Bleq => self.branch_if(self.flags.n || self.flags.z, &ops[0]),
            Bgeq => self.branch_if(!self.flags.n, &ops[0]),
            Blss => self.branch_if(self.flags.n, &ops[0]),
            Bgtru => self.branch_if(!(self.flags.c || self.flags.z), &ops[0]),
            Blequ => self.branch_if(self.flags.c || self.flags.z, &ops[0]),
            Bvc => self.branch_if(!self.flags.v, &ops[0]),
            Bvs => self.branch_if(self.flags.v, &ops[0]),
            Bcc => self.branch_if(!self.flags.c, &ops[0]),
            Bcs => self.branch_if(self.flags.c, &ops[0]),

            Bsbb | Bsbw => {
                self.push(self.regs[15]);
                self.branch(&ops[0]);
            }
            Rsb => {
                self.regs[15] = self.pop();
            }
            Jmp => {
                self.regs[15] = self.addr_of(&ops[0], DataSize::Byte)?;
            }
            Jsb => {
                let t = self.addr_of(&ops[0], DataSize::Byte)?;
                self.push(self.regs[15]);
                self.regs[15] = t;
            }
            Sobgtr | Sobgeq => {
                let v = self.rd(&ops[0], DataSize::Long)?;
                let (r, fl) = sub(v, 1, DataSize::Long);
                self.flags = fl;
                self.wr(&ops[0], DataSize::Long, r)?;
                let take = if insn.opcode == Sobgtr {
                    !(fl.n || fl.z)
                } else {
                    !fl.n
                };
                self.branch_if(take, &ops[1]);
            }
            Aoblss | Aobleq => {
                let limit = self.rd(&ops[0], DataSize::Long)?;
                let v = self.rd(&ops[1], DataSize::Long)?;
                let (r, fl) = add(v, 1, DataSize::Long);
                self.flags = fl;
                self.wr(&ops[1], DataSize::Long, r)?;
                let lt = (r as i32) < (limit as i32);
                let take = if insn.opcode == Aoblss {
                    lt
                } else {
                    lt || r == limit
                };
                self.branch_if(take, &ops[2]);
            }
            Blbs => {
                let v = self.rd(&ops[0], DataSize::Long)?;
                self.branch_if(v & 1 != 0, &ops[1]);
            }
            Blbc => {
                let v = self.rd(&ops[0], DataSize::Long)?;
                self.branch_if(v & 1 == 0, &ops[1]);
            }

            Calls => self.calls(ops)?,
            Ret => self.ret()?,
            Pushr => {
                let mask = self.rd(&ops[0], DataSize::Word)?;
                for i in (0..14).rev() {
                    if mask & (1 << i) != 0 {
                        self.push(self.regs[i]);
                    }
                }
            }
            Popr => {
                let mask = self.rd(&ops[0], DataSize::Word)?;
                for i in 0..14 {
                    if mask & (1 << i) != 0 {
                        self.regs[i] = self.pop();
                    }
                }
            }

            Movc3 => {
                let len = self.rd(&ops[0], DataSize::Long)?;
                let mut src = self.addr_of(&ops[1], DataSize::Byte)?;
                let mut dst = self.addr_of(&ops[2], DataSize::Byte)?;
                for _ in 0..len {
                    let b = self.data_read(src, DataSize::Byte);
                    self.data_write(dst, DataSize::Byte, b);
                    src = src.wrapping_add(1);
                    dst = dst.wrapping_add(1);
                }
                self.regs[0] = 0;
                self.regs[1] = src;
                self.regs[2] = 0;
                self.regs[3] = dst;
                self.regs[4] = 0;
                self.regs[5] = 0;
                self.flags = Flags {
                    z: true,
                    ..Flags::default()
                };
            }
            Cmpc3 => {
                let mut len = self.rd(&ops[0], DataSize::Long)?;
                let mut s1 = self.addr_of(&ops[1], DataSize::Byte)?;
                let mut s2 = self.addr_of(&ops[2], DataSize::Byte)?;
                self.flags = Flags {
                    z: true,
                    ..Flags::default()
                };
                while len > 0 {
                    let a = self.data_read(s1, DataSize::Byte);
                    let b = self.data_read(s2, DataSize::Byte);
                    let (_, fl) = sub(a, b, DataSize::Byte);
                    // CMP semantics at byte width.
                    self.flags = Flags {
                        n: fl.n != fl.v,
                        z: fl.z,
                        v: false,
                        c: fl.c,
                    };
                    if !self.flags.z {
                        break;
                    }
                    s1 = s1.wrapping_add(1);
                    s2 = s2.wrapping_add(1);
                    len -= 1;
                }
                self.regs[0] = len;
                self.regs[1] = s1;
                self.regs[3] = s2;
            }
            Locc => {
                let ch = self.rd(&ops[0], DataSize::Byte)? & 0xFF;
                let mut len = self.rd(&ops[1], DataSize::Long)?;
                let mut addr = self.addr_of(&ops[2], DataSize::Byte)?;
                while len > 0 {
                    let b = self.data_read(addr, DataSize::Byte);
                    if b == ch {
                        break;
                    }
                    addr = addr.wrapping_add(1);
                    len -= 1;
                }
                self.regs[0] = len;
                self.regs[1] = addr;
                self.set_logic(len, DataSize::Long);
                self.flags.c = false;
            }
            Insque => {
                let entry = self.addr_of(&ops[0], DataSize::Byte)?;
                let pred = self.addr_of(&ops[1], DataSize::Byte)?;
                let succ = self.data_read(pred, DataSize::Long);
                self.data_write(entry, DataSize::Long, succ);
                self.data_write(entry.wrapping_add(4), DataSize::Long, pred);
                self.data_write(pred, DataSize::Long, entry);
                self.data_write(succ.wrapping_add(4), DataSize::Long, entry);
                let (_, fl) = sub(succ, pred, DataSize::Long);
                self.flags = Flags {
                    n: fl.n != fl.v,
                    z: fl.z,
                    v: false,
                    c: fl.c,
                };
            }
            Remque => {
                let entry = self.addr_of(&ops[0], DataSize::Byte)?;
                let succ = self.data_read(entry, DataSize::Long);
                let pred = self.data_read(entry.wrapping_add(4), DataSize::Long);
                self.data_write(pred, DataSize::Long, succ);
                self.data_write(succ.wrapping_add(4), DataSize::Long, pred);
                self.wr(&ops[1], DataSize::Long, entry)?;
                let (_, fl) = sub(succ, pred, DataSize::Long);
                self.flags = Flags {
                    n: fl.n != fl.v,
                    z: fl.z,
                    v: false,
                    c: fl.c,
                };
            }
            Extzv => {
                let pos = self.rd(&ops[0], DataSize::Long)?;
                let size = self.rd(&ops[1], DataSize::Byte)? & 0xFF;
                let base = self.addr_of(&ops[2], DataSize::Byte)?;
                if size > 24 {
                    return Err(SimFault::Unsupported(Extzv));
                }
                let word = self.data_read(base.wrapping_add(pos >> 3), DataSize::Long);
                let field = if size == 0 {
                    0
                } else {
                    (word >> (pos & 7)) & ((1u32 << size) - 1)
                };
                self.set_logic(field, DataSize::Long);
                self.wr(&ops[3], DataSize::Long, field)?;
            }
            Insv => {
                let src = self.rd(&ops[0], DataSize::Long)?;
                let pos = self.rd(&ops[1], DataSize::Long)?;
                let size = self.rd(&ops[2], DataSize::Byte)? & 0xFF;
                let base = self.addr_of(&ops[3], DataSize::Byte)?;
                if size > 24 {
                    return Err(SimFault::Unsupported(Insv));
                }
                let addr = base.wrapping_add(pos >> 3);
                let old = self.data_read(addr, DataSize::Long);
                let mask = if size == 0 {
                    0
                } else {
                    ((1u32 << size) - 1) << (pos & 7)
                };
                let new = (old & !mask) | ((src << (pos & 7)) & mask);
                self.data_write(addr, DataSize::Long, new);
            }
        }
        Ok(false)
    }

    fn syscall(&mut self, code: u16) -> Result<bool, SimFault> {
        match code {
            0 => Ok(true),
            1 => {
                self.console.push(self.regs[0] as u8);
                Ok(false)
            }
            2 => {
                self.regs[0] = self.pid as u32;
                Ok(false)
            }
            3 => Ok(false), // yield: no other process exists here
            other => Err(SimFault::BadSyscall(other)),
        }
    }

    // ── Operand access ────────────────────────────────────────────────

    fn rd(&mut self, op: &Operand, size: DataSize) -> Result<u32, SimFault> {
        Ok(match *op {
            Operand::Literal(v) => v as u32,
            Operand::Immediate(v) => v,
            Operand::Register(r) => self.regs[usize::from(r)],
            _ => {
                let a = self.addr_of(op, size)?;
                self.data_read(a, size)
            }
        })
    }

    fn wr(&mut self, op: &Operand, size: DataSize, v: u32) -> Result<(), SimFault> {
        match *op {
            Operand::Register(r) => {
                let idx = usize::from(r);
                let merged = (self.regs[idx] & !size.mask()) | (v & size.mask());
                self.regs[idx] = merged;
            }
            _ => {
                let a = self.addr_of(op, size)?;
                self.data_write(a, size, v);
            }
        }
        Ok(())
    }

    /// Effective address with side effects (autoinc/autodec, indirection
    /// reads). `size` scales the auto-adjust.
    fn addr_of(&mut self, op: &Operand, size: DataSize) -> Result<u32, SimFault> {
        Ok(match *op {
            Operand::Absolute(a) => a,
            Operand::Relative(a) => a,
            Operand::RelativeDeferred(a) => self.data_read(a, DataSize::Long),
            Operand::RegDeferred(r) => self.regs[usize::from(r)],
            Operand::AutoDec(r) => {
                let idx = usize::from(r);
                self.regs[idx] = self.regs[idx].wrapping_sub(size.bytes());
                self.regs[idx]
            }
            Operand::AutoInc(r) => {
                let idx = usize::from(r);
                let a = self.regs[idx];
                self.regs[idx] = a.wrapping_add(size.bytes());
                a
            }
            Operand::AutoIncDeferred(r) => {
                let idx = usize::from(r);
                let p = self.regs[idx];
                self.regs[idx] = p.wrapping_add(4);
                self.data_read(p, DataSize::Long)
            }
            Operand::Displacement { disp, reg, .. } => {
                self.regs[usize::from(reg)].wrapping_add(disp as u32)
            }
            Operand::DisplacementDeferred { disp, reg, .. } => {
                let p = self.regs[usize::from(reg)].wrapping_add(disp as u32);
                self.data_read(p, DataSize::Long)
            }
            Operand::Literal(_)
            | Operand::Immediate(_)
            | Operand::Register(_)
            | Operand::BranchDisp(_) => {
                return Err(SimFault::Decode(DecodeError::InvalidForAccess(
                    atum_arch::AddrMode::Literal,
                    atum_arch::Access::Address,
                )))
            }
        })
    }

    fn push(&mut self, v: u32) {
        self.regs[14] = self.regs[14].wrapping_sub(4);
        let sp = self.regs[14];
        self.data_write(sp, DataSize::Long, v);
    }

    fn pop(&mut self) -> u32 {
        let sp = self.regs[14];
        let v = self.data_read(sp, DataSize::Long);
        self.regs[14] = sp.wrapping_add(4);
        v
    }

    fn branch(&mut self, op: &Operand) {
        if let Operand::BranchDisp(d) = op {
            self.regs[15] = self.regs[15].wrapping_add(*d as u32);
        }
    }

    fn branch_if(&mut self, cond: bool, op: &Operand) {
        if cond {
            self.branch(op);
        }
    }

    fn mov(&mut self, ops: &[Operand], size: DataSize) -> Result<(), SimFault> {
        let v = self.rd(&ops[0], size)?;
        self.set_logic(v & size.mask(), size);
        self.wr(&ops[1], size, v)?;
        Ok(())
    }

    fn binop(
        &mut self,
        ops: &[Operand],
        three: bool,
        f: fn(u32, u32, DataSize) -> (u32, Flags),
    ) -> Result<(), SimFault> {
        let a = self.rd(&ops[0], DataSize::Long)?;
        let b = self.rd(&ops[1], DataSize::Long)?;
        let (r, fl) = f(a, b, DataSize::Long);
        self.flags = fl;
        let dst = if three { &ops[2] } else { &ops[1] };
        self.wr(dst, DataSize::Long, r)?;
        Ok(())
    }

    fn binop_logic(
        &mut self,
        ops: &[Operand],
        three: bool,
        f: fn(u32, u32) -> u32,
    ) -> Result<(), SimFault> {
        let a = self.rd(&ops[0], DataSize::Long)?;
        let b = self.rd(&ops[1], DataSize::Long)?;
        let r = f(a, b);
        self.set_logic(r, DataSize::Long);
        let dst = if three { &ops[2] } else { &ops[1] };
        self.wr(dst, DataSize::Long, r)?;
        Ok(())
    }

    fn cmp(&mut self, ops: &[Operand], size: DataSize) -> Result<(), SimFault> {
        let a = self.rd(&ops[0], size)? & size.mask();
        let b = self.rd(&ops[1], size)? & size.mask();
        let (_, fl) = sub(a, b, size);
        self.flags = Flags {
            n: fl.n != fl.v,
            z: fl.z,
            v: false,
            c: fl.c,
        };
        Ok(())
    }

    fn tst(&mut self, ops: &[Operand], size: DataSize) -> Result<(), SimFault> {
        let v = self.rd(&ops[0], size)? & size.mask();
        self.set_logic(v, size);
        self.flags.c = false;
        Ok(())
    }

    fn set_logic(&mut self, v: u32, size: DataSize) {
        self.flags.n = v & size.sign_bit() != 0;
        self.flags.z = v & size.mask() == 0;
        self.flags.v = false;
        // C preserved.
    }

    fn calls(&mut self, ops: &[Operand]) -> Result<(), SimFault> {
        let numarg = self.rd(&ops[0], DataSize::Long)?;
        let dst = self.addr_of(&ops[1], DataSize::Byte)?;
        self.push(numarg);
        let new_ap = self.regs[14];
        let mask = self.data_read(dst, DataSize::Word) & 0xFFFF;
        for i in (0..=11u32).rev() {
            if mask & (1 << i) != 0 {
                self.push(self.regs[i as usize]);
            }
        }
        self.push(self.regs[12]);
        self.push(self.regs[13]);
        self.push(self.regs[15]);
        self.push(mask);
        self.regs[12] = new_ap;
        self.regs[13] = self.regs[14];
        self.regs[15] = dst.wrapping_add(2);
        Ok(())
    }

    fn ret(&mut self) -> Result<(), SimFault> {
        self.regs[14] = self.regs[13];
        let mask = self.pop();
        let pc = self.pop();
        self.regs[13] = self.pop();
        self.regs[12] = self.pop();
        for i in 0..=11u32 {
            if mask & (1 << i) != 0 {
                self.regs[i as usize] = self.pop();
            }
        }
        let numarg = self.pop();
        self.regs[14] = self.regs[14].wrapping_add(numarg.wrapping_mul(4));
        self.regs[15] = pc;
        Ok(())
    }
}

impl Default for ArchSim {
    fn default() -> ArchSim {
        ArchSim::new()
    }
}

// ── Flag helpers (independent implementations) ─────────────────────────

fn add(a: u32, b: u32, size: DataSize) -> (u32, Flags) {
    let am = a & size.mask();
    let bm = b & size.mask();
    let sum = am as u64 + bm as u64;
    let r = (sum as u32) & size.mask();
    (
        r,
        Flags {
            n: r & size.sign_bit() != 0,
            z: r == 0,
            c: sum > size.mask() as u64,
            v: ((am ^ r) & (bm ^ r) & size.sign_bit()) != 0,
        },
    )
}

fn sub(a: u32, b: u32, size: DataSize) -> (u32, Flags) {
    let am = a & size.mask();
    let bm = b & size.mask();
    let r = am.wrapping_sub(bm) & size.mask();
    (
        r,
        Flags {
            n: r & size.sign_bit() != 0,
            z: r == 0,
            c: bm > am,
            v: ((am ^ bm) & (am ^ r) & size.sign_bit()) != 0,
        },
    )
}

fn mul(a: u32, b: u32, size: DataSize) -> (u32, Flags) {
    let prod = (size.sign_extend(a) as i32 as i64) * (size.sign_extend(b) as i32 as i64);
    let r = (prod as u32) & size.mask();
    (
        r,
        Flags {
            n: r & size.sign_bit() != 0,
            z: r == 0,
            c: false,
            v: prod != size.sign_extend(r) as i32 as i64,
        },
    )
}

fn div(divisor: u32, dividend: u32) -> (u32, Flags) {
    let (ds, de) = (divisor as i32, dividend as i32);
    let (r, v) = if de == i32::MIN && ds == -1 {
        (dividend, true)
    } else {
        (de.wrapping_div(ds) as u32, false)
    };
    (
        r,
        Flags {
            n: (r as i32) < 0,
            z: r == 0,
            c: false,
            v,
        },
    )
}

fn ash(cnt: i32, src: u32) -> (u32, bool) {
    if cnt >= 0 {
        let c = cnt.min(63) as u32;
        let r = if c >= 32 { 0 } else { src << c };
        let back = if c >= 32 { 0 } else { ((r as i32) >> c) as u32 };
        (r, src != 0 && (back != src || c >= 32))
    } else {
        let c = (-cnt).min(31) as u32;
        (((src as i32) >> c) as u32, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str) -> ArchSim {
        let img = atum_asm::assemble(&format!(".org 0x200\n{src}\n")).unwrap();
        let mut sim = ArchSim::new();
        sim.load_image(&img);
        sim.set_pc(img.symbol("start").unwrap_or(0x200));
        assert_eq!(sim.run(1_000_000), ArchExit::Exited);
        sim
    }

    #[test]
    fn basic_program() {
        let mut sim =
            run_src("start: movl #5, r1\n addl3 r1, #10, r2\n movl #'x', r0\n chmk #1\n chmk #0\n");
        assert_eq!(sim.reg(2), 15);
        assert_eq!(sim.take_console_output(), b"x");
    }

    #[test]
    fn memory_and_loops() {
        let sim = run_src(
            "start: clrl r1\n movl #10, r2\nloop: addl2 r2, r1\n sobgtr r2, loop\n \
             movl r1, out\n movl out, r3\n chmk #0\nout: .long 0",
        );
        assert_eq!(sim.reg(3), 55);
    }

    #[test]
    fn calls_and_ret() {
        let sim = run_src(
            "start: pushl #4\n calls #1, dbl\n chmk #0\n\
             dbl: .word 0\n movl 4(ap), r0\n addl2 r0, r0\n ret",
        );
        assert_eq!(sim.reg(0), 8);
    }

    #[test]
    fn trace_emission_includes_all_kinds() {
        let img = atum_asm::assemble(
            ".org 0x200\nstart: movl data, r1\n movl r1, out\n chmk #0\n\
             data: .long 5\nout: .long 0\n",
        )
        .unwrap();
        let mut sim = ArchSim::new();
        sim.load_image(&img);
        sim.set_pc(0x200);
        sim.enable_trace(1);
        assert_eq!(sim.run(1000), ArchExit::Exited);
        let s = sim.trace().stats();
        assert!(s.ifetch >= 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.kernel_refs, 0, "no OS exists here — the blind spot");
    }

    #[test]
    fn divide_by_zero_faults() {
        let img = atum_asm::assemble(".org 0x200\nstart: clrl r1\n divl2 r1, r2\n").unwrap();
        let mut sim = ArchSim::new();
        sim.load_image(&img);
        sim.set_pc(0x200);
        assert_eq!(sim.run(10), ArchExit::Fault(SimFault::DivideByZero));
    }

    #[test]
    fn privileged_unsupported() {
        let img = atum_asm::assemble(".org 0x200\nstart: mtpr #0, #18\n").unwrap();
        let mut sim = ArchSim::new();
        sim.load_image(&img);
        sim.set_pc(0x200);
        assert!(matches!(
            sim.run(10),
            ArchExit::Fault(SimFault::Unsupported(_))
        ));
    }
}
