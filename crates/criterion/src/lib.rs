//! A self-contained, offline benchmarking shim.
//!
//! The build container has no crates.io access, so the real `criterion`
//! crate cannot be fetched. This crate implements the subset of its API
//! the workspace's benches use — `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `iter`/`iter_batched`,
//! `Throughput`, `BatchSize` — with a simple wall-clock harness: a warmup
//! pass, `sample_size` timed samples, and a mean/min/max report on
//! stdout (plus elements/second when a throughput is set).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Whether a bench name passes the command-line filter. As with the real
/// criterion, every non-flag argument is a substring filter and a bench
/// runs if any filter matches; no filters means run everything. Lets CI
/// smoke a single bench (`cargo bench --bench engine -- engine/untraced`)
/// without paying for the full suite.
pub fn filter_matches(name: &str) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How per-iteration setup state is batched (accepted, not tuned).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_bench(name, self.sample_size, None, f);
        self
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the throughput units used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut BenchmarkGroup {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(2);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        f: F,
    ) -> &mut BenchmarkGroup {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if !filter_matches(name) {
        return;
    }
    // Warmup pass (also forces lazy setup).
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut b);

    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed);
    }
    let total: Duration = times.iter().sum();
    let mean = total / samples as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    let rate = throughput.map(|t| {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let secs = mean.as_secs_f64().max(1e-12);
        format!("  {:.3e} {unit}", n as f64 / secs)
    });
    println!(
        "bench {name}: mean {mean:?}  min {min:?}  max {max:?}{}",
        rate.unwrap_or_default()
    );
}

/// Passed to each benchmark closure; times the measured routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
