//! The verifier's acceptance suite.
//!
//! Positive half: the stock control store and the genuinely installed
//! ATUM patches (both styles) must lint completely clean — zero findings,
//! warnings included. Negative half: each deliberately seeded bug must
//! produce a finding that names the offending symbol and micro-address.

use atum_arch::{DataSize, PrivReg};
use atum_core::patch::{PatchSet, PatchStyle};
use atum_mclint::{atomicity, error_count, lint, transparency, Finding, Pass, Severity};
use atum_ucode::{
    stock, AluOp, CcEffect, ControlStore, Entry, MicroCond, MicroOp, MicroReg, RefClass, SizeSel,
    Target,
};

fn assert_clean(findings: &[Finding], what: &str) {
    assert!(
        findings.is_empty(),
        "{what} should lint clean, got:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// A finding that names both the expected symbol and a concrete address.
fn expect_finding<'a>(findings: &'a [Finding], symbol: &str, needle: &str) -> &'a Finding {
    findings
        .iter()
        .find(|f| f.symbol.starts_with(symbol) && f.message.contains(needle))
        .unwrap_or_else(|| {
            panic!(
                "expected a finding at '{symbol}' containing '{needle}', got:\n{}",
                findings
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            )
        })
}

// ── positive: real stores are clean ──────────────────────────────────

#[test]
fn stock_store_lints_clean() {
    let cs = stock::build();
    assert_clean(&lint::run(&cs), "stock store");
}

#[test]
fn patched_store_scratch_style_lints_clean() {
    let mut cs = stock::build();
    PatchSet::install_with_style(&mut cs, PatchStyle::Scratch).unwrap();
    assert_clean(&lint::run(&cs), "patched store (scratch)");
}

#[test]
fn patched_store_spill_style_lints_clean() {
    let mut cs = stock::build();
    PatchSet::install_with_style(&mut cs, PatchStyle::Spill).unwrap();
    assert_clean(&lint::run(&cs), "patched store (spill)");
}

#[test]
fn uninstalled_store_lints_like_stock_plus_orphans() {
    // After uninstall the hooks are gone but the patch routines remain in
    // the WCS as dead weight: exactly the orphan-routine findings, and
    // nothing else.
    let mut cs = stock::build();
    let set = PatchSet::install(&mut cs).unwrap();
    set.uninstall(&mut cs);
    let findings = lint::run(&cs);
    assert!(!findings.is_empty(), "orphaned patch routines expected");
    for f in &findings {
        assert!(
            f.message.contains("unreachable"),
            "only orphan findings expected after uninstall, got: {f}"
        );
        assert!(f.symbol.starts_with("atum."), "unexpected orphan: {f}");
    }
}

// ── negative: seeded bug 1 — architectural register clobber ──────────

#[test]
fn patch_clobbering_architectural_register_is_caught() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    let stock_read = cs.symbol("xfer.read").unwrap();
    let addr = cs.append_routine(
        "evil.clobber",
        vec![
            MicroOp::Mov {
                src: MicroReg::Imm(0xDEAD),
                dst: MicroReg::Gpr(3),
            },
            MicroOp::Jump(Target::Abs(stock_read)),
        ],
    );
    cs.set_entry(Entry::XferRead, addr);
    let findings = lint::run(&cs);
    let f = expect_finding(&findings, "evil.clobber", "architecturally visible");
    assert_eq!(f.addr, addr);
    assert_eq!(f.severity, Severity::Error);
    assert!(f.message.contains("r3"), "{f}");
}

// ── negative: seeded bug 2 — store outside the reserved buffer ───────

#[test]
fn unchecked_buffer_store_is_caught() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    let stock_write = cs.symbol("xfer.write").unwrap();
    // Reads TRPTR and stores through it with no TRLIM bounds check: the
    // exact bug the capacity-check pattern exists to prevent.
    let addr = cs.append_routine(
        "evil.unchecked",
        vec![
            MicroOp::Mov {
                src: MicroReg::Mar,
                dst: MicroReg::P(0),
            },
            MicroOp::ReadPr {
                num: MicroReg::Imm(PrivReg::Trptr.number()),
                dst: MicroReg::P(2),
            },
            MicroOp::Mov {
                src: MicroReg::P(2),
                dst: MicroReg::Mar,
            },
            MicroOp::PhysWrite,
            MicroOp::Mov {
                src: MicroReg::P(0),
                dst: MicroReg::Mar,
            },
            MicroOp::Jump(Target::Abs(stock_write)),
        ],
    );
    cs.set_entry(Entry::XferWrite, addr);
    let findings = lint::run(&cs);
    let f = expect_finding(&findings, "evil.unchecked", "bounds check");
    assert_eq!(f.addr, addr + 3);
    assert_eq!(f.severity, Severity::Error);
}

#[test]
fn wild_physical_store_is_caught() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    let stock_read = cs.symbol("xfer.read").unwrap();
    // Stores through a constant physical address nowhere near the buffer.
    let addr = cs.append_routine(
        "evil.wild",
        vec![
            MicroOp::Mov {
                src: MicroReg::Imm(0x1000),
                dst: MicroReg::Mar,
            },
            MicroOp::PhysWrite,
            MicroOp::Jump(Target::Abs(stock_read)),
        ],
    );
    cs.set_entry(Entry::XferRead, addr);
    let findings = lint::run(&cs);
    let f = expect_finding(&findings, "evil.wild", "outside the reserved trace region");
    assert_eq!(f.addr, addr + 1);
}

// ── negative: seeded bug 3 — missing rejoin ──────────────────────────

#[test]
fn patch_that_never_rejoins_is_caught() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    // Ends in decode.next instead of jumping back to the displaced
    // routine: the hooked transfer never happens.
    let addr = cs.append_routine(
        "evil.norejoin",
        vec![
            MicroOp::Mov {
                src: MicroReg::Mar,
                dst: MicroReg::P(0),
            },
            MicroOp::DecodeNext,
        ],
    );
    cs.set_entry(Entry::XferIFetch, addr);
    let findings = lint::run(&cs);
    expect_finding(
        &findings,
        "evil.norejoin",
        "ends the architectural instruction",
    );
    let f = expect_finding(&findings, "evil.norejoin", "no path rejoins");
    assert_eq!(f.addr, addr);
}

#[test]
fn patch_rejoining_at_the_wrong_routine_is_caught() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    // Rejoins the *write* flow from the *read* hook: reads would execute
    // as writes.
    let stock_write = cs.symbol("xfer.write").unwrap();
    let addr = cs.append_routine(
        "evil.crossjoin",
        vec![MicroOp::Jump(Target::Abs(stock_write))],
    );
    cs.set_entry(Entry::XferRead, addr);
    let findings = lint::run(&cs);
    let f = expect_finding(
        &findings,
        "evil.crossjoin",
        "instead of the displaced xfer.read",
    );
    assert_eq!(f.addr, addr);
}

// ── negative: seeded bug 4 — unreachable routine ─────────────────────

#[test]
fn unreachable_patch_routine_is_caught() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    let addr = cs.append_routine("evil.orphan", vec![MicroOp::Ret]);
    let findings = lint::run(&cs);
    let f = expect_finding(&findings, "evil.orphan", "unreachable");
    assert_eq!(f.addr, addr);
    assert_eq!(f.severity, Severity::Error);
}

// ── negative: seeded bug 5 — stock microcode touching P scratch ──────

#[test]
fn stock_use_of_patch_scratch_is_caught() {
    // Build a minimal synthetic store whose "stock" region violates the
    // P-register reservation (the shipped stock builder cannot, which is
    // itself asserted by `stock_store_lints_clean`).
    let mut cs = ControlStore::new();
    let addr = cs.append_routine(
        "stock.pclobber",
        vec![
            MicroOp::Alu {
                op: AluOp::Add,
                a: MicroReg::P(5),
                b: MicroReg::Imm(1),
                dst: MicroReg::P(5),
                size: DataSize::Long,
                cc: CcEffect::None,
            },
            MicroOp::Jump(Target::Abs(0)),
        ],
    );
    cs.seal_stock();
    let findings = lint::run(&cs);
    let f = expect_finding(&findings, "stock.pclobber", "patch scratch");
    assert_eq!(f.addr, addr);
    assert_eq!(f.severity, Severity::Error);
}

// ── negative: seeded bug 6 — condition-code leak ─────────────────────

#[test]
fn patch_setting_condition_codes_is_caught() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    let stock_read = cs.symbol("xfer.read").unwrap();
    let addr = cs.append_routine(
        "evil.ccleak",
        vec![
            MicroOp::Alu {
                op: AluOp::Sub,
                a: MicroReg::P(1),
                b: MicroReg::P(2),
                dst: MicroReg::P(3),
                size: DataSize::Long,
                cc: CcEffect::Arith,
            },
            MicroOp::Jump(Target::Abs(stock_read)),
        ],
    );
    cs.set_entry(Entry::XferRead, addr);
    let findings = lint::run(&cs);
    let f = expect_finding(&findings, "evil.ccleak", "condition codes");
    assert_eq!(f.addr, addr);
}

// ── negative: seeded bug 7 — hot loop in a patch ─────────────────────

#[test]
fn hot_loop_patch_is_caught() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    // Spins on itself with no Halt: the one shape of unbounded added
    // cost the real buffer-full protocol is careful to avoid.
    let addr = cs.len();
    cs.append_routine(
        "evil.hotloop",
        vec![
            MicroOp::Mov {
                src: MicroReg::Mar,
                dst: MicroReg::P(0),
            },
            MicroOp::Jump(Target::Abs(addr)),
        ],
    );
    cs.set_entry(Entry::XferRead, addr);
    let findings = lint::run(&cs);
    let f = expect_finding(&findings, "evil.hotloop", "hot loop");
    assert_eq!(f.addr, addr);
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.pass, atum_mclint::Pass::Cost);
}

// ── negative: seeded bug 8 — unbounded cost via micro-recursion ──────

#[test]
fn recursive_patch_call_is_caught() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    let stock_read = cs.symbol("xfer.read").unwrap();
    let addr = cs.len();
    cs.append_routine(
        "evil.recurse",
        vec![
            MicroOp::Call(Target::Abs(addr)),
            MicroOp::Jump(Target::Abs(stock_read)),
        ],
    );
    cs.set_entry(Entry::XferRead, addr);
    let findings = lint::run(&cs);
    let f = expect_finding(&findings, "evil.recurse", "recursive micro-call");
    assert_eq!(f.addr, addr);
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.pass, atum_mclint::Pass::Cost);
}

// ── negative: seeded bug 9 — corrupted fast-engine lowering ──────────

#[test]
fn corrupted_lowering_is_caught() {
    use atum_machine::fast::{DecOp, FastImage};
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    let mut img = FastImage::build(&cs);
    // Flip one lowered word inside the logger: the store still proves
    // transparent, but the engine that actually runs the capture path
    // would diverge.
    let addr = cs.symbol("atum.log").unwrap();
    img.ops[addr as usize] = DecOp::DecodeNext;
    let findings = atum_mclint::lowering::check_image(&cs, &img);
    let f = expect_finding(&findings, "atum.log", "lowering mismatch");
    assert_eq!(f.addr, addr);
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.pass, atum_mclint::Pass::Lowering);
}

// ── negative: seeded bugs 10–12 — superblock cache corruption ────────

/// The live block set a machine's superblock cache would hold for this
/// store: one formed block per head that stitches one.
fn formed_blocks(cs: &ControlStore) -> Vec<atum_machine::Superblock> {
    use atum_machine::{FastImage, Superblock};
    let img = FastImage::build(cs);
    let fetch = cs.entry(Entry::Fetch);
    (0..cs.len())
        .filter_map(|h| Superblock::form(&img, fetch, h))
        .collect()
}

#[test]
fn corrupted_superblock_element_is_caught() {
    use atum_machine::fast::DecOp;
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    let mut blocks = formed_blocks(&cs);
    // Corrupt one element of the block stitched through the trace
    // logger: swap a cached op for a different pure op. The tier would
    // silently execute the wrong micro-word.
    let addr = cs.symbol("atum.log").unwrap();
    let (bi, ei) = blocks
        .iter()
        .enumerate()
        .find_map(|(bi, b)| b.ops.iter().position(|e| e.upc == addr).map(|ei| (bi, ei)))
        .expect("some block stitches through atum.log");
    blocks[bi].ops[ei].op = DecOp::AdvancePc;
    let findings = atum_mclint::superblock::check_blocks(&cs, cs.version(), &blocks);
    let f = expect_finding(&findings, "atum.log", "element");
    assert_eq!(f.addr, addr);
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.pass, atum_mclint::Pass::Superblock);
}

#[test]
fn stale_superblock_version_is_caught() {
    // A cache stamped with yesterday's store version: exactly the state
    // after a patch install bumps `ControlStore::version()`. One
    // finding, because every block is then suspect.
    let mut cs = stock::build();
    let blocks = formed_blocks(&cs);
    let stale = cs.version();
    PatchSet::install(&mut cs).unwrap();
    let findings = atum_mclint::superblock::check_blocks(&cs, stale, &blocks);
    assert_eq!(findings.len(), 1);
    let f = expect_finding(&findings, "superblock-cache", "stale");
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.pass, atum_mclint::Pass::Superblock);
}

#[test]
fn superblock_guard_that_cannot_exit_is_caught() {
    use atum_machine::fast::DecOp;
    let cs = stock::build();
    let mut blocks = formed_blocks(&cs);
    // Break a guard: replace a conditional branch element with a pure
    // no-op-like move. A block executing this would run straight past
    // the branch instead of exiting to its taken target — the classic
    // "guard fails to fall back" corruption.
    let (bi, ei, addr) = blocks
        .iter()
        .enumerate()
        .find_map(|(bi, b)| {
            b.ops
                .iter()
                .position(|e| {
                    matches!(
                        e.op,
                        DecOp::JumpUZero(_)
                            | DecOp::JumpUNotZero(_)
                            | DecOp::JumpRegNumIsPc(_)
                            | DecOp::JumpIf { .. }
                    )
                })
                .map(|ei| (bi, ei, b.ops[ei].upc))
        })
        .expect("some block contains a guard");
    blocks[bi].ops[ei].op = DecOp::AdvancePc;
    let findings = atum_mclint::superblock::check_blocks(&cs, cs.version(), &blocks);
    let f = expect_finding(&findings, &cs_symbol_at(&cs, addr), "element");
    assert_eq!(f.addr, addr);
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.pass, atum_mclint::Pass::Superblock);
}

/// Nearest-symbol rendering for an address, for asserting a finding
/// names the right routine.
fn cs_symbol_at(cs: &ControlStore, addr: u32) -> String {
    let mut best: Option<(&str, u32)> = None;
    for (name, &a) in cs.symbols() {
        if a <= addr && best.is_none_or(|(_, b)| a > b) {
            best = Some((name.as_str(), a));
        }
    }
    match best {
        Some((name, _)) => name.to_string(),
        None => format!("{addr:#06x}"),
    }
}

// ── negative: seeded bugs 13–16 — atomicity violations ───────────────

/// `Alu` with no condition-code side effect, the shape the real patches
/// use for address arithmetic and the capacity check.
fn alu(op: AluOp, a: MicroReg, b: MicroReg, dst: MicroReg) -> MicroOp {
    MicroOp::Alu {
        op,
        a,
        b,
        dst,
        size: DataSize::Long,
        cc: CcEffect::None,
    }
}

#[test]
fn trptr_advanced_over_unwritten_record_is_caught() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    let stock_read = cs.symbol("xfer.read").unwrap();
    // Proves headroom like the real logger but stores only the low
    // longword before publishing the full 8-byte advance: a drain
    // between the advance and the (never-written) high word reads a
    // torn record.
    let base = cs.append_routine(
        "evil.earlyadvance",
        vec![
            MicroOp::Mov {
                src: MicroReg::Mar,
                dst: MicroReg::P(0),
            },
            MicroOp::ReadPr {
                num: MicroReg::Imm(PrivReg::Trptr.number()),
                dst: MicroReg::P(2),
            },
            MicroOp::ReadPr {
                num: MicroReg::Imm(PrivReg::Trlim.number()),
                dst: MicroReg::P(3),
            },
            alu(AluOp::Add, MicroReg::P(2), MicroReg::Imm(8), MicroReg::P(4)),
            alu(AluOp::Sub, MicroReg::P(3), MicroReg::P(4), MicroReg::P(7)),
            MicroOp::JumpIf {
                cond: MicroCond::UCarry,
                target: Target::Abs(stock_read),
            },
            MicroOp::Mov {
                src: MicroReg::P(2),
                dst: MicroReg::Mar,
            },
            MicroOp::Mov {
                src: MicroReg::P(0),
                dst: MicroReg::Mdr,
            },
            MicroOp::PhysWrite,
            MicroOp::WritePr {
                num: MicroReg::Imm(PrivReg::Trptr.number()),
                src: MicroReg::P(4),
            },
            MicroOp::Mov {
                src: MicroReg::P(0),
                dst: MicroReg::Mar,
            },
            MicroOp::Jump(Target::Abs(stock_read)),
        ],
    );
    cs.set_entry(Entry::XferRead, base);
    let findings = lint::run_pass(&cs, Pass::Atomicity);
    let f = expect_finding(&findings, "evil.earlyadvance", "torn record");
    assert_eq!(f.addr, base + 9);
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.pass, Pass::Atomicity);
}

#[test]
fn fault_window_over_live_hook_scratch_is_caught() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    let stock_read = cs.symbol("xfer.read").unwrap();
    // Saves MAR to P0, then issues a *virtual* read: a translation miss
    // here diverts into the (hooked) exception dispatch, whose hook
    // clobbers P0 — the saved MAR is gone when this hook resumes.
    let base = cs.append_routine(
        "evil.faultsave",
        vec![
            MicroOp::Mov {
                src: MicroReg::Mar,
                dst: MicroReg::P(0),
            },
            MicroOp::Read {
                class: RefClass::DataRead,
                size: SizeSel::Fixed(DataSize::Long),
            },
            MicroOp::Mov {
                src: MicroReg::P(0),
                dst: MicroReg::Mar,
            },
            MicroOp::Jump(Target::Abs(stock_read)),
        ],
    );
    cs.set_entry(Entry::XferRead, base);
    let findings = lint::run_pass(&cs, Pass::Atomicity);
    let f = expect_finding(
        &findings,
        "evil.faultsave",
        "fault-permissible point inside a hook",
    );
    assert_eq!(f.addr, base + 1);
    assert_eq!(f.severity, Severity::Error);
    assert!(f.message.contains("p0"), "{f}");
}

#[test]
fn spill_line_shared_between_hook_routines_is_caught() {
    let mut cs = stock::build();
    PatchSet::install_with_style(&mut cs, PatchStyle::Spill).unwrap();
    let stock_write = cs.symbol("xfer.write").unwrap();
    // A second hook routine parking state at TRLIM+0 — the same slot the
    // spill-style logger's prologue uses. The two would clobber each
    // other's saved state when hooks nest.
    let base = cs.append_routine(
        "evil.spillhook",
        vec![
            MicroOp::ReadPr {
                num: MicroReg::Imm(PrivReg::Trlim.number()),
                dst: MicroReg::P(2),
            },
            MicroOp::Mov {
                src: MicroReg::P(2),
                dst: MicroReg::Mar,
            },
            MicroOp::PhysWrite,
            MicroOp::Jump(Target::Abs(stock_write)),
        ],
    );
    cs.set_entry(Entry::XferWrite, base);
    let findings = lint::run_pass(&cs, Pass::Atomicity);
    let f = expect_finding(&findings, "evil.spillhook", "spill-line scratch");
    assert_eq!(f.addr, base + 2);
    assert_eq!(f.severity, Severity::Error);
    assert!(f.message.contains("atum.log"), "{f}");
}

#[test]
fn headroom_reused_across_drain_window_is_caught() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    let stock_read = cs.symbol("xfer.read").unwrap();
    // Proves headroom, then halts (the buffer-full drain window, where
    // the host may reset TRPTR) and keeps using the pre-halt pointer
    // snapshot and headroom proof. The transparency pass accepts this —
    // to an undisturbed execution it is invisible — which is exactly the
    // soundness gap the atomicity pass closes.
    let base = cs.len();
    cs.append_routine(
        "evil.staleheadroom",
        vec![
            MicroOp::Mov {
                src: MicroReg::Mar,
                dst: MicroReg::P(0),
            },
            MicroOp::Mov {
                src: MicroReg::Mdr,
                dst: MicroReg::P(6),
            },
            MicroOp::ReadPr {
                num: MicroReg::Imm(PrivReg::Trptr.number()),
                dst: MicroReg::P(2),
            },
            MicroOp::ReadPr {
                num: MicroReg::Imm(PrivReg::Trlim.number()),
                dst: MicroReg::P(3),
            },
            alu(AluOp::Add, MicroReg::P(2), MicroReg::Imm(8), MicroReg::P(4)),
            alu(AluOp::Sub, MicroReg::P(3), MicroReg::P(4), MicroReg::P(7)),
            MicroOp::JumpIf {
                cond: MicroCond::UCarry,
                target: Target::Abs(base + 15),
            },
            MicroOp::Halt,
            MicroOp::Mov {
                src: MicroReg::P(2),
                dst: MicroReg::Mar,
            },
            MicroOp::Mov {
                src: MicroReg::P(0),
                dst: MicroReg::Mdr,
            },
            MicroOp::PhysWrite,
            MicroOp::WritePr {
                num: MicroReg::Imm(PrivReg::Trptr.number()),
                src: MicroReg::P(4),
            },
            MicroOp::Mov {
                src: MicroReg::P(0),
                dst: MicroReg::Mar,
            },
            MicroOp::Mov {
                src: MicroReg::P(6),
                dst: MicroReg::Mdr,
            },
            MicroOp::Jump(Target::Abs(stock_read)),
            // full: restore and bail.
            MicroOp::Mov {
                src: MicroReg::P(0),
                dst: MicroReg::Mar,
            },
            MicroOp::Mov {
                src: MicroReg::P(6),
                dst: MicroReg::Mdr,
            },
            MicroOp::Jump(Target::Abs(stock_read)),
        ],
    );
    cs.set_entry(Entry::XferRead, base);
    assert_clean(
        &transparency::check(&cs),
        "stale-headroom hook under transparency alone",
    );
    let findings = lint::run_pass(&cs, Pass::Atomicity);
    let f = expect_finding(
        &findings,
        "evil.staleheadroom",
        "outside the trace-pointer protocol",
    );
    assert_eq!(f.addr, base + 10);
    assert_eq!(f.severity, Severity::Error);
    expect_finding(
        &findings,
        "evil.staleheadroom",
        "not derived from the current trptr read",
    );
}

// ── positive: the state partition of the shipped artifacts ───────────

#[test]
fn stock_partition_matches_golden_file() {
    let expected = include_str!("golden/partition_stock.json");
    let actual = format!("{}\n", atomicity::partition(&stock::build()).to_json());
    assert!(
        actual == expected,
        "the stock state partition drifted from tests/golden/partition_stock.json.\n\
         If the change is intentional, replace the golden file with the actual value:\n\
         --- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

#[test]
fn shipped_partitions_have_no_unclassified_state() {
    for style in [None, Some(PatchStyle::Scratch), Some(PatchStyle::Spill)] {
        let mut cs = stock::build();
        if let Some(style) = style {
            PatchSet::install_with_style(&mut cs, style).unwrap();
        }
        let p = atomicity::partition(&cs);
        for e in p.registers.iter().chain(p.memory.iter()) {
            assert_ne!(
                e.class,
                atomicity::StateClass::Unclassified,
                "unclassified state '{}' in the {:?} partition",
                e.name,
                style
            );
        }
        // The patched stores must show the trace machinery as hook-
        // touched per-CPU-candidate state.
        if style.is_some() {
            let trptr = p
                .registers
                .iter()
                .find(|e| e.name == "trptr")
                .expect("patched store touches trptr");
            assert_eq!(trptr.class, atomicity::StateClass::PerCpuCandidate);
            assert!(trptr.hooks);
        }
    }
}

// ── single-pass runs (`mculist verify --pass`) ───────────────────────

/// `lint::run_pass` must agree with the filtered full run on every pass,
/// and the full run must come out in the pinned deterministic order —
/// the contract `mculist verify --pass <name>` and the verify golden
/// rely on.
#[test]
fn run_pass_matches_filtered_full_run() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    let stock_read = cs.symbol("xfer.read").unwrap();
    // Seed bugs across several passes at once.
    cs.append_routine("evil.orphan", vec![MicroOp::Ret]);
    let base = cs.append_routine(
        "evil.faultsave",
        vec![
            MicroOp::Mov {
                src: MicroReg::Mar,
                dst: MicroReg::P(0),
            },
            MicroOp::Read {
                class: RefClass::DataRead,
                size: SizeSel::Fixed(DataSize::Long),
            },
            MicroOp::Mov {
                src: MicroReg::P(0),
                dst: MicroReg::Mar,
            },
            MicroOp::Jump(Target::Abs(stock_read)),
        ],
    );
    cs.set_entry(Entry::XferRead, base);

    let all = lint::run(&cs);
    assert!(error_count(&all) >= 2, "expected seeded findings");
    let keys: Vec<(u8, &String, u32)> = all
        .iter()
        .map(|f| (f.pass as u8, &f.symbol, f.addr))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(
        keys, sorted,
        "lint::run is not in (pass, symbol, addr) order"
    );

    for &p in Pass::ALL.iter() {
        let single = lint::run_pass(&cs, p);
        let filtered: Vec<Finding> = all.iter().filter(|f| f.pass == p).cloned().collect();
        assert_eq!(
            single, filtered,
            "run_pass({p}) disagrees with the filtered full run"
        );
    }
}

// ── error counting for the CLI gate ──────────────────────────────────

#[test]
fn error_count_matches_severity() {
    let mut cs = stock::build();
    PatchSet::install(&mut cs).unwrap();
    cs.append_routine("evil.orphan", vec![MicroOp::Ret]);
    let findings = lint::run(&cs);
    assert!(error_count(&findings) >= 1);
    assert_eq!(
        error_count(&findings),
        findings.iter().filter(|f| f.is_error()).count()
    );
}
