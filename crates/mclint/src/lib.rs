//! # atum-mclint — static verifier for microcode, patches and SVX images
//!
//! ATUM's central claims — the patch is *invisible* to the OS and
//! *transparent* to architectural execution — are checked dynamically by
//! the equivalence suite in `atum-baselines`. This crate proves the same
//! properties statically, straight off the control store, the way a
//! microcode group would have vetted a WCS patch before loading it on a
//! production 8200:
//!
//! * [`structural`] — control-flow sanity over the micro-CFG: every
//!   routine reachable from some entry, no fall-through off the end of
//!   the store, all branch targets in range, dispatch tables fully
//!   populated;
//! * [`dataflow`] — def-use over [`MicroReg`]: reads of never-written
//!   micro-temporaries, dead writes, and the "stock microcode never
//!   touches `P0`–`P7`" reservation the patches depend on;
//! * [`transparency`] — the ATUM-specific verifier: each installed patch
//!   routine writes only patch scratch (`P0`–`P7`) and the saved-and-
//!   restored `MAR`/`MDR`, its memory stores are physical stores whose
//!   address derivation stays inside the reserved buffer's bounds check,
//!   and it rejoins the stock flow at the hooked entry's original target;
//! * [`svx`] — an assembly-level lint for images built by `atum-asm`
//!   (the MOSS kernel and the workloads): `calls`/`ret` balance,
//!   privileged instructions outside kernel images, SCB vector coverage;
//! * [`cost`] — static micro-cycle cost analysis: proves every hook's
//!   added cycles are loop-free and bounded, and computes per-hook
//!   `[min, max]` added-cycle intervals and dilation bounds in the same
//!   cycle model ([`atum_ucode::cost`]) both execution engines charge —
//!   the static side of the paper's 10–20× slowdown band;
//! * [`lowering`] — fast-engine lowering equivalence: independently
//!   re-derives what each predecoded `DecOp` must be from its source
//!   [`MicroOp`](atum_ucode::MicroOp) (operand slot mapping, resolved
//!   targets and sizes, constant-folded ALU results recomputed from
//!   scratch) and diffs that against the sealed
//!   [`FastImage`](atum_machine::FastImage);
//! * [`superblock`] — superblock formation equivalence: re-derives the
//!   traced-superblock tier's stitched blocks (element addresses,
//!   fused cycle offsets, exits) from the source micro-words through
//!   an independent copy of the stitching rules, for every head the
//!   block cache could probe, and can diff a live cache for stale or
//!   tampered blocks;
//! * [`atomicity`] — hook atomicity under faults, interrupts and
//!   concurrent drains: no fault-permissible point inside a hook
//!   closure, every hook follows the read-`TRPTR` → bounds-check →
//!   store → advance-last protocol (so a drain never observes a pointer
//!   over a torn record), and the whole store's register/memory state
//!   partition (per-context / per-CPU-candidate / shared) is extracted
//!   and hooks are proven to touch no shared state — the contract the
//!   SMP per-CPU buffers will be checked against.
//!
//! The top-level entry point is [`lint::run`]; `mculist verify` and
//! `mculist cost` (in `atum-bench`) drive it from the command line and
//! CI gates on both.
//!
//! What the verifier deliberately cannot prove is documented per pass and
//! summarised in `DESIGN.md` — briefly: the cost pass bounds *modelled*
//! micro-cycles, not host wall-clock or a real 8200's memory-system
//! stalls; it trusts the engine's micro-op semantics (the lowering pass
//! narrows that trust to the reference engine only); and its
//! buffer-bounds proof covers the derivation patterns the patches
//! actually use rather than arbitrary address arithmetic.
//!
//! [`MicroReg`]: atum_ucode::MicroReg

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomicity;
pub mod cfg;
pub mod cost;
pub mod dataflow;
pub mod lowering;
pub mod structural;
pub mod superblock;
pub mod svx;
pub mod transparency;

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but conceivably intended; does not fail `mculist verify`.
    Warning,
    /// A defect: the property the pass proves does not hold.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Which pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Micro-CFG structural checks.
    Structural,
    /// Def-use / liveness over micro-registers.
    Dataflow,
    /// ATUM patch transparency verification.
    Transparency,
    /// SVX assembly image lint.
    Svx,
    /// Static micro-cycle cost bounds (loop-freedom, bounded added cost).
    Cost,
    /// Fast-engine lowering equivalence against the control store.
    Lowering,
    /// Superblock formation equivalence against the control store.
    Superblock,
    /// Hook atomicity: fault-window safety, the trace-pointer protocol
    /// and the per-context/per-CPU/shared state partition.
    Atomicity,
}

impl Pass {
    /// Every pass, in report order.
    pub const ALL: &'static [Pass] = &[
        Pass::Structural,
        Pass::Dataflow,
        Pass::Transparency,
        Pass::Svx,
        Pass::Cost,
        Pass::Lowering,
        Pass::Superblock,
        Pass::Atomicity,
    ];

    /// Parses a pass name as printed by [`Display`](fmt::Display) (and
    /// accepted by `mculist verify --pass <name>`).
    pub fn from_name(name: &str) -> Option<Pass> {
        Pass::ALL.iter().copied().find(|p| p.to_string() == name)
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pass::Structural => f.write_str("structural"),
            Pass::Dataflow => f.write_str("dataflow"),
            Pass::Transparency => f.write_str("transparency"),
            Pass::Svx => f.write_str("svx"),
            Pass::Cost => f.write_str("cost"),
            Pass::Lowering => f.write_str("lowering"),
            Pass::Superblock => f.write_str("superblock"),
            Pass::Atomicity => f.write_str("atomicity"),
        }
    }
}

/// One verifier finding.
///
/// `symbol` is the nearest symbol at or before `addr` (rendered as
/// `name+offset` when not exactly at the symbol), so a finding always
/// names the offending routine; `addr` is the micro-address in the
/// control store for the microcode passes, or the virtual address for
/// [`Pass::Svx`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The pass that produced this finding.
    pub pass: Pass,
    /// Error or warning.
    pub severity: Severity,
    /// Nearest enclosing symbol (`name` or `name+offset`), or a raw
    /// address rendering when no symbol covers `addr`.
    pub symbol: String,
    /// Micro-address (control-store passes) or virtual address (SVX).
    pub addr: u32,
    /// Human-readable description of the defect.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {} @{:#06x}: {}",
            self.severity, self.pass, self.symbol, self.addr, self.message
        )
    }
}

impl Finding {
    /// Whether this finding fails a verification gate.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

/// Counts errors in a finding list.
pub fn error_count(findings: &[Finding]) -> usize {
    findings.iter().filter(|f| f.is_error()).count()
}

/// The composed control-store verifier.
pub mod lint {
    use super::{
        atomicity, cost, dataflow, lowering, structural, superblock, transparency, Finding, Pass,
    };
    use atum_ucode::ControlStore;

    /// Fully deterministic report order: pass, then symbol, then
    /// address. Pass-internal iteration order can never leak into the
    /// report this way, which is what lets the verify output be golden-
    /// pinned.
    fn sort(mut out: Vec<Finding>) -> Vec<Finding> {
        out.sort_by(|a, b| {
            (a.pass as u8, &a.symbol, a.addr).cmp(&(b.pass as u8, &b.symbol, b.addr))
        });
        out
    }

    /// Runs every control-store pass — structural, dataflow, cost,
    /// lowering-equivalence, superblock-formation equivalence,
    /// atomicity and (when hooks are installed) transparency — and
    /// returns the combined findings sorted by pass, symbol and
    /// micro-address. SVX images are linted separately through
    /// [`crate::svx::check_image`], since they are not part of the
    /// control store.
    pub fn run(cs: &ControlStore) -> Vec<Finding> {
        let mut out = structural::check(cs);
        out.extend(dataflow::check(cs));
        out.extend(transparency::check(cs));
        out.extend(cost::check(cs));
        out.extend(lowering::check(cs));
        out.extend(superblock::check(cs));
        out.extend(atomicity::check(cs));
        sort(out)
    }

    /// Runs a single control-store pass, in the same deterministic
    /// order as [`run`]. [`Pass::Svx`] returns no findings here: SVX
    /// lints images, not the control store.
    pub fn run_pass(cs: &ControlStore, pass: Pass) -> Vec<Finding> {
        let out = match pass {
            Pass::Structural => structural::check(cs),
            Pass::Dataflow => dataflow::check(cs),
            Pass::Transparency => transparency::check(cs),
            Pass::Svx => Vec::new(),
            Pass::Cost => cost::check(cs),
            Pass::Lowering => lowering::check(cs),
            Pass::Superblock => superblock::check(cs),
            Pass::Atomicity => atomicity::check(cs),
        };
        sort(out)
    }
}
