//! Fast-engine lowering equivalence: statically verify the predecoded
//! [`FastImage`] against the control store it claims to mirror.
//!
//! The capture path runs on the fast engine, so a lowering bug there
//! would corrupt traces while the reference engine (and every
//! microcode-level proof) stays green. This pass closes that gap
//! *statically*: for every control-store word it independently
//! re-derives what the predecoded [`DecOp`] must be — operand selectors
//! mapped through the unified register file layout
//! ([`atum_machine::regs::slots`]), `Target::Entry` indirections
//! resolved through the live entry table, size selectors and constant
//! privileged-register numbers resolved, and both-immediate ALU ops
//! constant-folded by a from-scratch reimplementation of the ALU
//! semantics (result *and* packed micro-flags) — then diffs that against
//! the image word by word. The dispatch-table snapshots and the version
//! key are checked the same way.
//!
//! The re-derivation deliberately does not call into the fast engine's
//! own decoder (it is not even visible outside `atum-machine`); the only
//! shared vocabulary is the public [`DecOp`]/[`Src`]/[`Dst`] types and
//! the slot-layout constants, which *are* the specification. What the
//! pass cannot prove is that the fast engine *executes* a `DecOp` the
//! way the reference engine executes its `MicroOp` — that is pinned
//! dynamically by the differential suite in
//! `crates/bench/tests/fast_equiv.rs`.

use crate::cfg::SymbolMap;
use crate::{Finding, Pass, Severity};
use atum_arch::{DataSize, PrivReg};
use atum_machine::fast::{DecOp, Dst, FastImage, Src};
use atum_machine::regs::slots;
use atum_ucode::{AluOp, ControlStore, MicroCond, MicroOp, MicroReg, SizeSel, SpecTable, Target};

/// Lints a store against a freshly built image — the form `lint::run`
/// uses, proving the build itself is faithful.
pub fn check(cs: &ControlStore) -> Vec<Finding> {
    check_image(cs, &FastImage::build(cs))
}

/// Diffs an existing image against a store. Exposed separately so a
/// stale or tampered image (the seeded-bug tests) can be checked too.
pub fn check_image(cs: &ControlStore, img: &FastImage) -> Vec<Finding> {
    let mut out = Vec::new();
    if img.version != cs.version() {
        out.push(Finding {
            pass: Pass::Lowering,
            severity: Severity::Error,
            symbol: "fast-image".into(),
            addr: 0,
            message: format!(
                "image version {} does not match store version {}: the image \
                 is stale and every lowered word is suspect",
                img.version,
                cs.version()
            ),
        });
        return out;
    }
    if img.ops.len() != cs.len() as usize {
        out.push(Finding {
            pass: Pass::Lowering,
            severity: Severity::Error,
            symbol: "fast-image".into(),
            addr: 0,
            message: format!(
                "image has {} lowered words for a {}-word store",
                img.ops.len(),
                cs.len()
            ),
        });
        return out;
    }
    for b in 0..=255u8 {
        if img.opcode_table[b as usize] != cs.opcode_target(b) {
            out.push(Finding {
                pass: Pass::Lowering,
                severity: Severity::Error,
                symbol: format!("opcode[{b:#04x}]"),
                addr: cs.opcode_target(b),
                message: format!(
                    "opcode dispatch snapshot points at {:#06x}, store says {:#06x}",
                    img.opcode_table[b as usize],
                    cs.opcode_target(b)
                ),
            });
        }
    }
    for table in [
        SpecTable::Read,
        SpecTable::Write,
        SpecTable::Modify,
        SpecTable::Addr,
    ] {
        for nibble in 0..16u8 {
            let got = img.spec_tables[table.index()][nibble as usize];
            let want = cs.spec_target(table, nibble);
            if got != want {
                out.push(Finding {
                    pass: Pass::Lowering,
                    severity: Severity::Error,
                    symbol: format!("spec[{table:?}][{nibble:#x}]"),
                    addr: want,
                    message: format!(
                        "specifier dispatch snapshot points at {got:#06x}, store says {want:#06x}"
                    ),
                });
            }
        }
    }
    let symbols = SymbolMap::new(cs);
    for addr in 0..cs.len() {
        let want = lower(cs.word(addr), cs);
        let got = img.ops[addr as usize];
        if got != want {
            out.push(Finding {
                pass: Pass::Lowering,
                severity: Severity::Error,
                symbol: symbols.name(addr),
                addr,
                message: format!(
                    "lowering mismatch: image holds {got:?}, independent \
                     derivation says {want:?}"
                ),
            });
        }
    }
    out.sort_by_key(|f| f.addr);
    out
}

/// Resolves a micro-target the way the decoder must: entries through the
/// *live* entry table.
fn target(t: Target, cs: &ControlStore) -> u32 {
    match t {
        Target::Abs(a) => a,
        Target::Entry(e) => cs.entry(e),
    }
}

/// The unified-register-file slot backing a plain-slot [`MicroReg`], per
/// the layout in [`slots`]. `None` for the selectors that are not plain
/// slots (immediates, PSL, the indexed GPR, the size views).
fn plain_slot(r: MicroReg) -> Option<u8> {
    Some(match r {
        MicroReg::Gpr(n) => (slots::GPR0 + (n & 0xF) as usize) as u8,
        MicroReg::T(n) => (slots::T0 + (n & 0xF) as usize) as u8,
        MicroReg::P(n) => (slots::P0 + (n & 0x7) as usize) as u8,
        MicroReg::Mar => slots::MAR as u8,
        MicroReg::Mdr => slots::MDR as u8,
        MicroReg::Spec => slots::SPEC as u8,
        MicroReg::OpReg => slots::OPREG as u8,
        MicroReg::RegNum => slots::REGNUM as u8,
        MicroReg::IbData => slots::IBDATA as u8,
        MicroReg::IbCnt => slots::IBCNT as u8,
        MicroReg::ExcVec => slots::EXCVEC as u8,
        MicroReg::ExcParam => slots::EXCPARAM as u8,
        MicroReg::ExcFlags => slots::EXCFLAGS as u8,
        MicroReg::ExcPc => slots::EXCPC as u8,
        MicroReg::ExcIpl => slots::EXCIPL as u8,
        MicroReg::Imm(_)
        | MicroReg::Psl
        | MicroReg::GprIdx
        | MicroReg::OSizeBytes
        | MicroReg::OSizeMask => return None,
    })
}

/// Source-operand lowering: `Err(v)` for an immediate (the decoder hoists
/// those into dedicated variants).
fn src(r: MicroReg) -> Result<Src, u32> {
    if let MicroReg::Imm(v) = r {
        return Err(v);
    }
    Ok(match r {
        MicroReg::Psl => Src::Psl,
        MicroReg::GprIdx => Src::GprIdx,
        MicroReg::OSizeBytes => Src::OSizeBytes,
        MicroReg::OSizeMask => Src::OSizeMask,
        other => Src::Slot(plain_slot(other).expect("every other selector is a plain slot")),
    })
}

/// Destination-operand lowering. The latches write through masks; GPRs
/// get their logged variant; read-only selectors lower to [`Dst::ReadOnly`].
fn dst(r: MicroReg) -> Dst {
    match r {
        MicroReg::Gpr(n) => Dst::Gpr(n & 0xF),
        MicroReg::GprIdx => Dst::GprIdx,
        MicroReg::Psl => Dst::Psl,
        MicroReg::Spec => Dst::MaskedFF(slots::SPEC as u8),
        MicroReg::OpReg => Dst::MaskedFF(slots::OPREG as u8),
        MicroReg::RegNum => Dst::MaskedF(slots::REGNUM as u8),
        MicroReg::Imm(_) | MicroReg::OSizeBytes | MicroReg::OSizeMask => Dst::ReadOnly,
        other => Dst::Slot(plain_slot(other).expect("every other selector is a plain slot")),
    }
}

/// Independently derives the [`DecOp`] a control-store word must lower
/// to. Also the word-level front end of the `superblock` pass, which
/// walks these derived ops instead of trusting the sealed image.
pub(crate) fn lower(op: MicroOp, cs: &ControlStore) -> DecOp {
    match op {
        MicroOp::Mov { src: s, dst: d } => match (src(s), dst(d)) {
            (Ok(Src::Slot(src)), Dst::Slot(dst)) => DecOp::MovSS { src, dst },
            (Err(imm), Dst::Slot(dst)) => DecOp::MovIS { imm, dst },
            (Ok(Src::GprIdx), Dst::Slot(dst)) => DecOp::MovGIS { dst },
            (Ok(Src::Slot(src)), Dst::GprIdx) => DecOp::MovSGI { src },
            (Ok(Src::Slot(src)), Dst::MaskedF(dst)) => DecOp::MovSMF { src, dst },
            (Ok(Src::Slot(src)), Dst::Gpr(gpr)) => DecOp::MovSG { src, gpr },
            (Ok(src), dst) => DecOp::Mov { src, dst },
            (Err(imm), dst) => DecOp::MovID { imm, dst },
        },
        MicroOp::Alu {
            op,
            a,
            b,
            dst: d,
            cc,
            size,
        } => match (src(a), src(b), dst(d)) {
            (Ok(Src::Slot(a)), Ok(Src::Slot(b)), Dst::Slot(dst)) => DecOp::AluSS {
                op,
                a,
                b,
                dst,
                cc,
                size,
            },
            (Err(imm), Ok(Src::Slot(b)), Dst::Slot(dst)) => DecOp::AluIS {
                op,
                imm,
                b,
                dst,
                cc,
                size,
            },
            (Ok(Src::Slot(a)), Err(imm), Dst::Slot(dst)) => DecOp::AluSI {
                op,
                a,
                imm,
                dst,
                cc,
                size,
            },
            (Ok(a), Ok(b), dst) => DecOp::Alu {
                op,
                a,
                b,
                dst,
                cc,
                size,
            },
            (Err(imm), Ok(b), dst) => DecOp::AluID {
                op,
                imm,
                b,
                dst,
                cc,
                size,
            },
            (Ok(a), Err(imm), dst) => DecOp::AluDI {
                op,
                a,
                imm,
                dst,
                cc,
                size,
            },
            (Err(av), Err(bv), dst) => {
                let (result, fbits) = alu_fold(op, av, bv, size);
                DecOp::AluConst {
                    result,
                    fbits,
                    cc,
                    dst,
                }
            }
        },
        MicroOp::SetSize(s) => DecOp::SetSize(s),
        MicroOp::SetSizeDyn(r) => match src(r) {
            Ok(s) => DecOp::SetSizeDyn(s),
            Err(1) => DecOp::SetSize(DataSize::Byte),
            Err(2) => DecOp::SetSize(DataSize::Word),
            Err(4) => DecOp::SetSize(DataSize::Long),
            Err(_) => DecOp::SetSizeBad,
        },
        MicroOp::Read { class, size } => DecOp::Read {
            class,
            size: match size {
                SizeSel::Fixed(s) => Some(s),
                SizeSel::OSize => None,
            },
        },
        MicroOp::Write { size } => DecOp::Write {
            size: match size {
                SizeSel::Fixed(s) => Some(s),
                SizeSel::OSize => None,
            },
        },
        MicroOp::PhysRead => DecOp::PhysRead,
        MicroOp::PhysWrite => DecOp::PhysWrite,
        MicroOp::Jump(t) => DecOp::Jump(target(t, cs)),
        MicroOp::JumpIf { cond, target: t } => {
            let t = target(t, cs);
            match cond {
                MicroCond::UZero => DecOp::JumpUZero(t),
                MicroCond::UNotZero => DecOp::JumpUNotZero(t),
                MicroCond::RegNumIsPc => DecOp::JumpRegNumIsPc(t),
                cond => DecOp::JumpIf { cond, target: t },
            }
        }
        MicroOp::Call(t) => DecOp::Call(target(t, cs)),
        MicroOp::Ret => DecOp::Ret,
        MicroOp::DispatchOpcode => DecOp::DispatchOpcode,
        MicroOp::DispatchSpec(table) => DecOp::DispatchSpec(table.index() as u8),
        MicroOp::DecodeNext => DecOp::DecodeNext,
        MicroOp::AdvancePc => DecOp::AdvancePc,
        MicroOp::Fault(kind) => DecOp::Fault(kind),
        MicroOp::ReadPr { num, dst: d } => match src(num) {
            Err(n) => match PrivReg::from_number(n) {
                Some(reg) => DecOp::ReadPrK { reg, dst: dst(d) },
                None => DecOp::ReadPrBad,
            },
            Ok(num) => DecOp::ReadPr { num, dst: dst(d) },
        },
        MicroOp::WritePr { num, src: s } => match (src(num), src(s)) {
            (Err(n), s) => match (PrivReg::from_number(n), s) {
                (Some(reg), Ok(src)) => DecOp::WritePrK { reg, src },
                (Some(reg), Err(imm)) => DecOp::WritePrKI { reg, imm },
                (None, _) => DecOp::WritePrBad,
            },
            (Ok(num), Ok(src)) => DecOp::WritePr { num, src },
            (Ok(num), Err(imm)) => DecOp::WritePrI { num, imm },
        },
        MicroOp::TbFlushAll => DecOp::TbFlushAll,
        MicroOp::TbFlushProc => DecOp::TbFlushProc,
        MicroOp::Halt => DecOp::Halt,
    }
}

/// From-scratch constant fold of one ALU op: the value and the packed
/// micro-flags (`z n c v divz` in bits 0..5) the engines would produce.
/// This mirrors the documented ALU semantics (`DESIGN.md`), not the
/// engine source, so a bug in `alu_exec`'s fold shows up as a diff.
fn alu_fold(op: AluOp, a: u32, b: u32, size: DataSize) -> (u32, u8) {
    let (mask, sign): (u32, u32) = match size {
        DataSize::Byte => (0xFF, 0x80),
        DataSize::Word => (0xFFFF, 0x8000),
        DataSize::Long => (0xFFFF_FFFF, 0x8000_0000),
    };
    let sext = |v: u32| -> i32 {
        match size {
            DataSize::Byte => v as u8 as i8 as i32,
            DataSize::Word => v as u16 as i16 as i32,
            DataSize::Long => v as i32,
        }
    };
    let am = a & mask;
    let bm = b & mask;
    let mut c = false;
    let mut v = false;
    let mut divz = false;
    // Borrow-style subtract shared by Sub/RSub/Neg.
    let sub = |x: u32, y: u32, c: &mut bool, v: &mut bool| -> u32 {
        let r = x.wrapping_sub(y) & mask;
        *c = y > x;
        *v = ((x ^ y) & (x ^ r) & sign) != 0;
        r
    };
    let result = match op {
        AluOp::Add => {
            let sum = am as u64 + bm as u64;
            let r = (sum as u32) & mask;
            c = sum > mask as u64;
            v = ((am ^ r) & (bm ^ r) & sign) != 0;
            r
        }
        AluOp::Sub => sub(am, bm, &mut c, &mut v),
        AluOp::RSub => sub(bm, am, &mut c, &mut v),
        AluOp::Mul => {
            let prod = sext(am) as i64 * sext(bm) as i64;
            let r = (prod as u32) & mask;
            v = prod != sext(r) as i64;
            r
        }
        AluOp::Div | AluOp::Rem => {
            let divisor = sext(am);
            let dividend = sext(bm);
            if divisor == 0 {
                divz = true;
                bm
            } else if dividend == i32::MIN && divisor == -1 && size == DataSize::Long {
                v = true;
                bm
            } else if op == AluOp::Div {
                (dividend.wrapping_div(divisor) as u32) & mask
            } else {
                (dividend.wrapping_rem(divisor) as u32) & mask
            }
        }
        AluOp::And => am & bm,
        AluOp::BicR => bm & !am,
        AluOp::Or => am | bm,
        AluOp::Xor => am ^ bm,
        AluOp::Ash => {
            let count = am as i32;
            if count >= 0 {
                let cnt = (count as u32).min(63);
                let shifted = if cnt >= 32 { 0 } else { (bm << cnt) & mask };
                let back = if cnt >= 32 {
                    0
                } else {
                    ((sext(shifted) >> cnt) as u32) & mask
                };
                v = bm != 0 && (back != bm || cnt >= 32);
                shifted
            } else {
                let cnt = count.unsigned_abs().min(31);
                ((sext(bm) >> cnt) as u32) & mask
            }
        }
        AluOp::Lsr => {
            let cnt = am.min(63);
            if cnt >= 32 {
                0
            } else {
                (bm >> cnt) & mask
            }
        }
        AluOp::Lsl => {
            let cnt = am.min(63);
            if cnt >= 32 {
                0
            } else {
                (bm << cnt) & mask
            }
        }
        AluOp::Pass => bm,
        AluOp::Not => !bm & mask,
        AluOp::Neg => sub(0, bm, &mut c, &mut v),
        AluOp::SextB => (bm as u8 as i8 as i32 as u32) & mask,
        AluOp::SextW => (bm as u16 as i16 as i32 as u32) & mask,
    };
    let z = result & mask == 0;
    let n = result & sign != 0;
    (
        result,
        z as u8 | (n as u8) << 1 | (c as u8) << 2 | (v as u8) << 3 | (divz as u8) << 4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_ucode::CcEffect;

    #[test]
    fn stock_store_lowers_cleanly() {
        let cs = atum_ucode::stock::build();
        assert_eq!(check(&cs), Vec::new());
    }

    #[test]
    fn stale_image_is_one_finding() {
        let mut cs = atum_ucode::stock::build();
        let img = FastImage::build(&cs);
        cs.append_routine("x", vec![MicroOp::Halt]);
        let findings = check_image(&cs, &img);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("stale"));
    }

    #[test]
    fn tampered_word_is_caught_with_symbol_and_address() {
        let cs = atum_ucode::stock::build();
        let mut img = FastImage::build(&cs);
        let addr = cs.symbol("fetch.insn").unwrap();
        img.ops[addr as usize] = DecOp::Halt;
        let findings = check_image(&cs, &img);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].addr, addr);
        assert_eq!(findings[0].symbol, "fetch.insn");
        assert!(findings[0].message.contains("lowering mismatch"));
    }

    #[test]
    fn tampered_dispatch_snapshot_is_caught() {
        let cs = atum_ucode::stock::build();
        let mut img = FastImage::build(&cs);
        img.opcode_table[0x12] ^= 1;
        let findings = check_image(&cs, &img);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].symbol.starts_with("opcode["));
    }

    #[test]
    fn alu_fold_matches_engine_fold_on_a_grid() {
        // The engines fold both-immediate ALU ops at predecode; the
        // stock+patched stores exercise only a few. Sweep a value grid
        // through every op and size by lowering synthetic stores, so the
        // independent fold here is checked against the engine's
        // (via FastImage::build) across sign/carry/overflow boundaries.
        let values = [
            0u32,
            1,
            2,
            4,
            0x7F,
            0x80,
            0xFF,
            0x7FFF,
            0x8000,
            0xFFFF_FFFF,
            0x8000_0000,
        ];
        let ops = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::RSub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::And,
            AluOp::BicR,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Ash,
            AluOp::Lsr,
            AluOp::Lsl,
            AluOp::Pass,
            AluOp::Not,
            AluOp::Neg,
            AluOp::SextB,
            AluOp::SextW,
        ];
        for size in [DataSize::Byte, DataSize::Word, DataSize::Long] {
            for op in ops {
                let mut words = Vec::new();
                for a in values {
                    for b in values {
                        words.push(MicroOp::Alu {
                            op,
                            a: MicroReg::Imm(a),
                            b: MicroReg::Imm(b),
                            dst: MicroReg::T(0),
                            cc: CcEffect::None,
                            size,
                        });
                    }
                }
                let mut cs = ControlStore::new();
                cs.append_routine("grid", words);
                assert_eq!(check(&cs), Vec::new(), "{op:?} {size:?}");
            }
        }
    }
}
