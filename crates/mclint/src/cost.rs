//! Static micro-cycle cost analysis — the pass that turns the paper's
//! measured 10–20× slowdown band into a machine-checked bound.
//!
//! For every installed hook (see [`detect_hooks`]) the pass walks the
//! patch-region micro-CFG and computes best/worst-case **added cycles**
//! per invocation: the micro-cycles spent at addresses `>= stock_len()`
//! before control rejoins the stock flow. The cycle model is the shared
//! one in [`atum_ucode::cost`] — the same constants both execution
//! engines charge — so a bound proved here is a bound on what the
//! machine's cycle counter reports.
//!
//! The walk proves, per hook:
//!
//! * **loop-freedom** — no micro-cycle inside the patch region other
//!   than through a [`MicroOp::Halt`] (the buffer-full protocol halts
//!   for host service and retries; that back-edge runs at most once per
//!   drain and is excluded from per-invocation bounds);
//! * **bounded calls** — micro-calls resolve inside the patch region,
//!   never recurse, and nest below a fixed depth;
//! * **bounded added cost** — every completing path's cycle count lies
//!   in a finite `[min, max]` interval.
//!
//! Bounds are computed under three branch assumptions: tracing enabled
//! (the capture-enable test `ReadPr TRCTL; AND #ENABLE; JumpIf UZero`
//! is resolved to fall through), tracing disabled (taken), and either
//! (both explored; this is the walk findings come from). The displaced
//! stock routine is costed the same way over the stock region, with
//! entry-table indirections resolved to the *stock* symbols (the live
//! table points back into the patches), giving a per-hook dilation
//! `(stock + added) / stock`.
//!
//! What the pass deliberately cannot see: PTE-walk cycles (a dynamic
//! property of TLB state — the engines charge `cost::PTE_READ` per walk
//! on top of everything costed here) and host-side drain time while the
//! machine is halted. Memory-system stalls beyond the flat
//! `cost::MEM_EXTRA` charge do not exist in this machine model; on a
//! real 8200 they widen the envelope (see `EXPERIMENTS.md`).

use crate::cfg::{self, SymbolMap};
use crate::transparency::{detect_hooks, Hook, HookSlot};
use crate::{Finding, Pass, Severity};
use atum_arch::{Opcode, PrivReg};
use atum_ucode::{cost as ucost, AluOp, ControlStore, Entry, MicroCond, MicroOp, MicroReg, Target};
use std::collections::HashMap;

/// Micro-call depth bound inside an analyzed routine (matches the
/// transparency pass; the real micro-stack is far deeper, but a patch
/// nesting further than this is a runaway).
const MAX_CALL_DEPTH: usize = 8;

/// Inclusive best/worst-case micro-cycle bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Cheapest completing path.
    pub min: u64,
    /// Most expensive completing path.
    pub max: u64,
}

impl Bounds {
    fn point(c: u64) -> Bounds {
        Bounds { min: c, max: c }
    }

    fn shift(self, c: u64) -> Bounds {
        Bounds {
            min: self.min + c,
            max: self.max + c,
        }
    }

    fn plus(self, o: Bounds) -> Bounds {
        Bounds {
            min: self.min + o.min,
            max: self.max + o.max,
        }
    }

    /// Interval union of two optional bounds (a path set that includes
    /// both alternatives).
    fn join(a: Option<Bounds>, b: Option<Bounds>) -> Option<Bounds> {
        match (a, b) {
            (Some(x), Some(y)) => Some(Bounds {
                min: x.min.min(y.min),
                max: x.max.max(y.max),
            }),
            (x, None) => x,
            (None, y) => y,
        }
    }
}

impl std::fmt::Display for Bounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.min == self.max {
            write!(f, "{}", self.min)
        } else {
            write!(f, "{}..{}", self.min, self.max)
        }
    }
}

/// Branch assumption for the capture-enable test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assume {
    /// `TRCTL & ENABLE != 0`: the enable test falls through.
    Enabled,
    /// `TRCTL & ENABLE == 0`: the enable test is taken.
    Disabled,
    /// Explore both sides (the findings walk).
    Either,
}

/// Static cost result for one installed hook.
#[derive(Debug, Clone)]
pub struct HookCost {
    /// The hook (slot, patch address, displaced stock target).
    pub hook: Hook,
    /// Symbol of the patch routine at the hook address.
    pub symbol: String,
    /// Added cycles per invocation with tracing enabled, when every
    /// enabled path is loop-free and bounded.
    pub added_on: Option<Bounds>,
    /// Added cycles per invocation with tracing disabled (the residual
    /// cost of an installed-but-idle patch).
    pub added_off: Option<Bounds>,
    /// Cost of the displaced stock routine, when it is bounded (stock
    /// routines with data-dependent loops cost `None`).
    pub stock: Option<Bounds>,
}

impl HookCost {
    /// Per-invocation dilation `(stock + added_on) / stock`, when both
    /// sides are bounded. The extremes pair the *longest* stock path
    /// with the smallest addition (best case) and the *shortest* stock
    /// path with the largest addition (worst case).
    pub fn dilation(&self) -> Option<(f64, f64)> {
        let (a, s) = (self.added_on?, self.stock?);
        if s.min == 0 {
            return None;
        }
        Some((
            (s.max + a.min) as f64 / s.max as f64,
            (s.min + a.max) as f64 / s.min as f64,
        ))
    }
}

/// The full cost-pass result: per-hook bounds plus lint findings.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// One entry per installed hook, in detection order.
    pub hooks: Vec<HookCost>,
    /// Loop/recursion/unboundedness findings from the either-path walk.
    pub findings: Vec<Finding>,
}

/// Reference-mix weights for aggregating per-hook bounds into a
/// per-reference envelope — the counts a run (or the standard-mix
/// profile) observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct RefProfile {
    /// Instruction-stream longword fetches (`Entry::XferIFetch` runs).
    pub ifetch: u64,
    /// Data reads (`Entry::XferRead` runs).
    pub data_reads: u64,
    /// Data writes (`Entry::XferWrite` runs).
    pub data_writes: u64,
    /// Exceptions and interrupts (`Entry::ExcDispatch` runs).
    pub exceptions: u64,
    /// Context switches (`ldpctx` executions).
    pub ctx_switches: u64,
}

/// The lint entry point: loop-freedom and boundedness findings for every
/// installed hook (empty on an unpatched store).
pub fn check(cs: &ControlStore) -> Vec<Finding> {
    analyze(cs).findings
}

/// Runs the full cost analysis: findings plus per-hook bounds.
pub fn analyze(cs: &ControlStore) -> CostReport {
    let symbols = SymbolMap::new(cs);
    let stock_entries = stock_entry_table(cs);
    // Fault-permissible points, from the predicate shared with the
    // atomicity pass. A faultable micro-op inside a hook closure diverts
    // into the exception flow, and those cycles (fault delivery plus the
    // re-entered hooks) are outside every static added-cycle interval
    // computed below — so the intervals would silently under-report.
    let fault_points = cfg::fault_points(cs);
    let mut hooks = Vec::new();
    let mut findings = Vec::new();
    for hook in detect_hooks(cs) {
        let closure = cfg::region_closure(cs, hook.patch_addr, cs.stock_len(), cs.len());
        for &fp in &fault_points {
            if closure.binary_search(&fp).is_ok() {
                findings.push(Finding {
                    pass: Pass::Cost,
                    severity: Severity::Warning,
                    symbol: symbols.name(fp),
                    addr: fp,
                    message: "fault-permissible micro-op in a hook closure: fault-path cycles escape the static added-cycle interval".into(),
                });
            }
        }
        // Findings come from the either-path walk (it covers the union
        // of the enabled and disabled path sets).
        let mut w = Walker::patch(cs, &symbols, Assume::Either);
        let _ = w.invocation_bounds(hook.patch_addr);
        findings.append(&mut w.findings);

        let added_on =
            Walker::patch(cs, &symbols, Assume::Enabled).invocation_bounds(hook.patch_addr);
        let added_off =
            Walker::patch(cs, &symbols, Assume::Disabled).invocation_bounds(hook.patch_addr);
        let stock = hook.expected.and_then(|start| {
            Walker::stock(cs, &symbols, &stock_entries, start).invocation_bounds(start)
        });
        hooks.push(HookCost {
            symbol: symbols.name(hook.patch_addr),
            hook,
            added_on,
            added_off,
            stock,
        });
    }
    findings.sort_by_key(|f| f.addr);
    findings.dedup();
    CostReport { hooks, findings }
}

impl CostReport {
    /// The hook occupying an entry slot, if installed.
    pub fn entry_hook(&self, e: Entry) -> Option<&HookCost> {
        self.hooks
            .iter()
            .find(|h| h.hook.slot == HookSlot::Entry(e))
    }

    /// The hook on the `ldpctx` opcode, if installed.
    pub fn ldpctx_hook(&self) -> Option<&HookCost> {
        self.hooks
            .iter()
            .find(|h| h.hook.slot == HookSlot::Opcode(Opcode::Ldpctx.to_byte()))
    }

    /// Aggregate per-reference dilation of the transfer path, weighted
    /// by the profile's reference mix:
    /// `Σ wᶜ·(stockᶜ + addedᶜ) / Σ wᶜ·stockᶜ` over the three transfer
    /// classes. `None` unless all three transfer hooks are installed
    /// with finite bounds and the profile has at least one reference.
    pub fn aggregate_dilation(&self, p: &RefProfile) -> Option<(f64, f64)> {
        let classes = [
            (Entry::XferIFetch, p.ifetch),
            (Entry::XferRead, p.data_reads),
            (Entry::XferWrite, p.data_writes),
        ];
        let (mut lo, mut hi) = (0.0, 0.0);
        let (mut den_lo, mut den_hi) = (0.0, 0.0);
        for (e, w) in classes {
            let h = self.entry_hook(e)?;
            let (a, s) = (h.added_on?, h.stock?);
            let w = w as f64;
            lo += w * (s.min + a.min) as f64;
            hi += w * (s.max + a.max) as f64;
            // Conservative envelope: the cheap numerator over the
            // expensive denominator and vice versa (exact for the
            // straight-line stock transfers, where min == max).
            den_lo = w.mul_add(s.max as f64, den_lo);
            den_hi = w.mul_add(s.min as f64, den_hi);
        }
        if den_lo == 0.0 || den_hi == 0.0 {
            return None;
        }
        Some((lo / den_lo, hi / den_hi))
    }

    /// The worst per-invocation dilation across the transfer hooks — an
    /// upper bound on *whole-run* slowdown within the cycle model, since
    /// a run's untraced cycles include at least the stock transfer cost
    /// of every reference (the mediant inequality does the rest).
    pub fn max_dilation(&self) -> Option<f64> {
        let mut worst: Option<f64> = None;
        for e in [Entry::XferIFetch, Entry::XferRead, Entry::XferWrite] {
            let (_, hi) = self.entry_hook(e)?.dilation()?;
            worst = Some(worst.map_or(hi, |w: f64| w.max(hi)));
        }
        worst
    }

    /// Total added-cycle interval for a run that observed `p`'s event
    /// counts with tracing enabled throughout: `Σ nₑ · added_onₑ` over
    /// every event class with a nonzero count. `None` if some counted
    /// event's hook is missing or unbounded.
    pub fn added_interval(&self, p: &RefProfile) -> Option<Bounds> {
        let mut total = Bounds::point(0);
        let mut add = |n: u64, h: Option<&HookCost>| -> Option<()> {
            if n == 0 {
                return Some(());
            }
            let a = h?.added_on?;
            total = total.plus(Bounds {
                min: n * a.min,
                max: n * a.max,
            });
            Some(())
        };
        add(p.ifetch, self.entry_hook(Entry::XferIFetch))?;
        add(p.data_reads, self.entry_hook(Entry::XferRead))?;
        add(p.data_writes, self.entry_hook(Entry::XferWrite))?;
        add(p.exceptions, self.entry_hook(Entry::ExcDispatch))?;
        add(p.ctx_switches, self.ldpctx_hook())?;
        Some(total)
    }
}

/// The stock entry table: each entry slot resolved to its *stock*
/// routine's symbol (the live table points into the patches once hooks
/// are installed).
fn stock_entry_table(cs: &ControlStore) -> [Option<u32>; Entry::COUNT] {
    let mut t = [None; Entry::COUNT];
    for e in Entry::ALL {
        t[e.index()] = cs.symbol(e.symbol());
    }
    t
}

/// The region-bounded cost walker. One instance analyzes one routine
/// under one branch assumption; memoization makes the walk linear in
/// the region size.
struct Walker<'a> {
    cs: &'a ControlStore,
    symbols: &'a SymbolMap,
    /// Analysis region `[lo, hi)`; transferring outside it completes the
    /// invocation.
    lo: u32,
    hi: u32,
    /// Entry-slot resolution (live table for the patch walk, stock
    /// symbols for the displaced-routine walk).
    entries: [Option<u32>; Entry::COUNT],
    /// Transfer to this address completes the invocation (the stock
    /// walk ends where the next instruction's processing begins).
    fetch_terminal: Option<u32>,
    assume: Assume,
    /// Emit findings (the patch walk); the stock walk just poisons.
    report: bool,
    /// A cycle or unresolvable construct was seen: all bounds poison to
    /// `None`.
    poisoned: bool,
    memo: HashMap<u32, Memo>,
    call_memo: HashMap<u32, Memo>,
    call_chain: Vec<u32>,
    findings: Vec<Finding>,
}

#[derive(Clone, Copy)]
enum Memo {
    InProgress,
    Done(Option<Bounds>),
}

impl<'a> Walker<'a> {
    fn patch(cs: &'a ControlStore, symbols: &'a SymbolMap, assume: Assume) -> Walker<'a> {
        Walker {
            cs,
            symbols,
            lo: cs.stock_len(),
            hi: cs.len(),
            entries: {
                let mut t = [None; Entry::COUNT];
                for e in Entry::ALL {
                    t[e.index()] = Some(cs.entry(e));
                }
                t
            },
            fetch_terminal: None,
            assume,
            report: assume == Assume::Either,
            poisoned: false,
            memo: HashMap::new(),
            call_memo: HashMap::new(),
            call_chain: Vec::new(),
            findings: Vec::new(),
        }
    }

    fn stock(
        cs: &'a ControlStore,
        symbols: &'a SymbolMap,
        entries: &[Option<u32>; Entry::COUNT],
        start: u32,
    ) -> Walker<'a> {
        let fetch = entries[Entry::Fetch.index()];
        Walker {
            cs,
            symbols,
            lo: 0,
            hi: cs.stock_len(),
            entries: *entries,
            // The displaced routine's own work ends where the next
            // instruction's fetch begins — unless it *is* the fetch
            // routine.
            fetch_terminal: fetch.filter(|&f| f != start),
            assume: Assume::Either,
            report: false,
            poisoned: false,
            memo: HashMap::new(),
            call_memo: HashMap::new(),
            call_chain: Vec::new(),
            findings: Vec::new(),
        }
    }

    /// Bounds over completing paths from `start`, or `None` if poisoned
    /// (a loop, recursion, or an unresolvable construct).
    fn invocation_bounds(&mut self, start: u32) -> Option<Bounds> {
        let b = self.bounds(start);
        if self.poisoned {
            None
        } else {
            b
        }
    }

    fn finding(&mut self, addr: u32, severity: Severity, message: String) {
        if self.report {
            self.findings.push(Finding {
                pass: Pass::Cost,
                severity,
                symbol: self.symbols.name(addr),
                addr,
                message,
            });
        }
    }

    fn resolve(&self, t: Target) -> Option<u32> {
        match t {
            Target::Abs(a) => Some(a),
            Target::Entry(e) => self.entries[e.index()],
        }
    }

    /// Whether the `JumpIf` at `addr` is the capture-enable test: a
    /// `UZero` branch immediately after `ReadPr TRCTL; AND #ENABLE`.
    /// This is the one pattern the assumption modes resolve; any other
    /// conditional explores both sides.
    fn is_enable_test(&self, addr: u32) -> bool {
        if addr < self.lo + 2 {
            return false;
        }
        let and_ok = matches!(
            self.cs.word(addr - 1),
            MicroOp::Alu {
                op: AluOp::And,
                b: MicroReg::Imm(1),
                ..
            } | MicroOp::Alu {
                op: AluOp::And,
                a: MicroReg::Imm(1),
                ..
            }
        );
        let read_ok = matches!(
            self.cs.word(addr - 2),
            MicroOp::ReadPr {
                num: MicroReg::Imm(n),
                ..
            } if n == PrivReg::Trctl.number()
        );
        and_ok && read_ok
    }

    /// Bounds over completing continuations from `addr` (top level:
    /// `Ret` completes the invocation).
    fn bounds(&mut self, addr: u32) -> Option<Bounds> {
        if addr < self.lo || addr >= self.hi || Some(addr) == self.fetch_terminal {
            return Some(Bounds::point(0));
        }
        match self.memo.get(&addr) {
            Some(Memo::Done(b)) => return *b,
            Some(Memo::InProgress) => {
                // A micro-cycle that does not pass through a Halt: with
                // the engine never pausing, the path never completes.
                self.finding(
                    addr,
                    Severity::Error,
                    "hot loop: a micro-cycle in the patch region never reaches \
                     the stock flow (added cycles unbounded)"
                        .into(),
                );
                self.poisoned = true;
                return None;
            }
            None => {}
        }
        self.memo.insert(addr, Memo::InProgress);
        let op = self.cs.word(addr);
        let c = ucost::op_cost(&op);
        let b = match op {
            // Completion: control re-enters the architectural flow.
            MicroOp::DecodeNext
            | MicroOp::Fault(_)
            | MicroOp::Ret
            | MicroOp::DispatchOpcode
            | MicroOp::DispatchSpec(_) => Some(Bounds::point(c)),
            // Halt pauses for the host; the resumed retry is a fresh
            // drain-rate event, not part of per-invocation bounds.
            MicroOp::Halt => None,
            MicroOp::Jump(t) => self.hop(addr, t).map(|b| b.shift(c)),
            MicroOp::JumpIf { target, cond } => {
                let assume = if cond == MicroCond::UZero && self.is_enable_test(addr) {
                    self.assume
                } else {
                    Assume::Either
                };
                let taken = match assume {
                    Assume::Enabled => None,
                    _ => self.hop(addr, target),
                };
                let fall = match assume {
                    Assume::Disabled => None,
                    _ => self.bounds(addr + 1),
                };
                Bounds::join(taken, fall).map(|b| b.shift(c))
            }
            MicroOp::Call(t) => {
                let callee = self.call_bounds(addr, t);
                let cont = self.bounds(addr + 1);
                match (callee, cont) {
                    (Some(x), Some(y)) => Some(x.plus(y).shift(c)),
                    _ => None,
                }
            }
            _ => self.bounds(addr + 1).map(|b| b.shift(c)),
        };
        self.memo.insert(addr, Memo::Done(b));
        b
    }

    fn hop(&mut self, addr: u32, t: Target) -> Option<Bounds> {
        match self.resolve(t) {
            Some(target) => self.bounds(target),
            None => {
                self.finding(
                    addr,
                    Severity::Warning,
                    "entry-table target cannot be resolved statically".into(),
                );
                self.poisoned = true;
                None
            }
        }
    }

    /// Bounds for a micro-call: cycles from the callee's entry to its
    /// matching `Ret`.
    fn call_bounds(&mut self, site: u32, t: Target) -> Option<Bounds> {
        let Some(target) = self.resolve(t) else {
            self.finding(
                site,
                Severity::Warning,
                "called entry-table target cannot be resolved statically".into(),
            );
            self.poisoned = true;
            return None;
        };
        if self.call_chain.contains(&target) {
            self.finding(
                site,
                Severity::Error,
                format!(
                    "recursive micro-call to {}: added cycles unbounded",
                    self.symbols.name(target)
                ),
            );
            self.poisoned = true;
            return None;
        }
        if self.call_chain.len() >= MAX_CALL_DEPTH {
            self.finding(
                site,
                Severity::Error,
                format!("micro-call nesting exceeds {MAX_CALL_DEPTH}"),
            );
            self.poisoned = true;
            return None;
        }
        if let Some(Memo::Done(b)) = self.call_memo.get(&target) {
            return *b;
        }
        self.call_chain.push(target);
        let saved = std::mem::take(&mut self.memo);
        let b = self.callee_walk(site, target);
        self.memo = saved;
        self.call_chain.pop();
        self.call_memo.insert(target, Memo::Done(b));
        b
    }

    /// Like [`Walker::bounds`] but `Ret` means "return to the caller"
    /// and leaving the region without one escapes cost accounting.
    fn callee_walk(&mut self, site: u32, addr: u32) -> Option<Bounds> {
        if addr < self.lo || addr >= self.hi || Some(addr) == self.fetch_terminal {
            self.finding(
                site,
                Severity::Error,
                format!(
                    "micro-call path escapes the analysis region at {} without \
                     returning (added cycles unaccountable)",
                    self.symbols.name(addr)
                ),
            );
            self.poisoned = true;
            return None;
        }
        match self.memo.get(&addr) {
            Some(Memo::Done(b)) => return *b,
            Some(Memo::InProgress) => {
                self.finding(
                    addr,
                    Severity::Error,
                    "hot loop: a micro-cycle inside a called routine never \
                     returns (added cycles unbounded)"
                        .into(),
                );
                self.poisoned = true;
                return None;
            }
            None => {}
        }
        self.memo.insert(addr, Memo::InProgress);
        let op = self.cs.word(addr);
        let c = ucost::op_cost(&op);
        let b = match op {
            MicroOp::Ret => Some(Bounds::point(c)),
            // The invocation ends inside the call (exception unwinds,
            // next-instruction handoff, host halt): no returning path.
            MicroOp::DecodeNext
            | MicroOp::Fault(_)
            | MicroOp::Halt
            | MicroOp::DispatchOpcode
            | MicroOp::DispatchSpec(_) => None,
            MicroOp::Jump(t) => match self.resolve(t) {
                Some(target) => self.callee_walk(site, target).map(|b| b.shift(c)),
                None => {
                    self.poisoned = true;
                    None
                }
            },
            MicroOp::JumpIf { target, cond } => {
                let assume = if cond == MicroCond::UZero && self.is_enable_test(addr) {
                    self.assume
                } else {
                    Assume::Either
                };
                let taken = match (assume, self.resolve(target)) {
                    (Assume::Enabled, _) => None,
                    (_, Some(t)) => self.callee_walk(site, t),
                    (_, None) => {
                        self.poisoned = true;
                        None
                    }
                };
                let fall = match assume {
                    Assume::Disabled => None,
                    _ => self.callee_walk(site, addr + 1),
                };
                Bounds::join(taken, fall).map(|b| b.shift(c))
            }
            MicroOp::Call(t) => {
                let callee = self.call_bounds(addr, t);
                let cont = self.callee_walk(site, addr + 1);
                match (callee, cont) {
                    (Some(x), Some(y)) => Some(x.plus(y).shift(c)),
                    _ => None,
                }
            }
            _ => self.callee_walk(site, addr + 1).map(|b| b.shift(c)),
        };
        self.memo.insert(addr, Memo::Done(b));
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_core::patch::{PatchSet, PatchStyle};
    use atum_ucode::stock;

    fn analyzed(style: PatchStyle) -> CostReport {
        let mut cs = stock::build();
        PatchSet::install_with_style(&mut cs, style).unwrap();
        analyze(&cs)
    }

    #[test]
    fn shipped_patches_have_no_cost_findings() {
        for style in [PatchStyle::Scratch, PatchStyle::Spill] {
            let rep = analyzed(style);
            assert!(rep.findings.is_empty(), "{style:?}: {:?}", rep.findings);
            assert_eq!(rep.hooks.len(), 5, "all five hooks analyzed");
        }
    }

    #[test]
    fn scratch_transfer_bounds_match_hand_count() {
        // xfer.read is 3 straight-line ops (mov, read, decode-like
        // transfer); the scratch patch adds the 3-op enable check, 1-op
        // seed, the call, the 24..25-cycle logger body and the tail
        // jump. Hand-counted: +33..34 cycles enabled, +4 disabled.
        let rep = analyzed(PatchStyle::Scratch);
        let h = rep.entry_hook(Entry::XferRead).unwrap();
        assert_eq!(h.stock, Some(Bounds { min: 3, max: 3 }));
        assert_eq!(h.added_on, Some(Bounds { min: 33, max: 34 }));
        assert_eq!(h.added_off, Some(Bounds { min: 4, max: 4 }));
        let (lo, hi) = h.dilation().unwrap();
        assert!((lo - 12.0).abs() < 1e-9, "{lo}");
        assert!((hi - 37.0 / 3.0).abs() < 1e-9, "{hi}");
    }

    #[test]
    fn every_hook_is_cheap_when_tracing_is_disabled() {
        // The residual cost of an installed-but-idle patch is the
        // enable check plus the escape jump, regardless of style.
        for style in [PatchStyle::Scratch, PatchStyle::Spill] {
            for h in &analyzed(style).hooks {
                assert_eq!(
                    h.added_off,
                    Some(Bounds { min: 4, max: 4 }),
                    "{style:?} {}",
                    h.hook.desc
                );
            }
        }
    }

    #[test]
    fn scratch_aggregate_sits_in_the_paper_band_spill_above() {
        // The paper's standard mix is read-heavy; any plausible mix of
        // the three transfer classes lands the scratch style inside
        // 10..20x because each class's own dilation does.
        let mix = RefProfile {
            ifetch: 2,
            data_reads: 1,
            data_writes: 1,
            ..RefProfile::default()
        };
        let (lo, hi) = analyzed(PatchStyle::Scratch)
            .aggregate_dilation(&mix)
            .unwrap();
        assert!(lo >= 10.0 && hi <= 20.0, "scratch aggregate {lo}..{hi}");
        let (slo, shi) = analyzed(PatchStyle::Spill)
            .aggregate_dilation(&mix)
            .unwrap();
        assert!(slo > hi, "spill ({slo}..{shi}) must dominate scratch");
        assert!(slo >= 10.0);
    }

    #[test]
    fn added_interval_weights_per_class_counts() {
        let rep = analyzed(PatchStyle::Scratch);
        let zero = rep.added_interval(&RefProfile::default()).unwrap();
        assert_eq!(zero, Bounds { min: 0, max: 0 });
        let one_read = rep
            .added_interval(&RefProfile {
                data_reads: 1,
                ..RefProfile::default()
            })
            .unwrap();
        assert_eq!(
            one_read,
            rep.entry_hook(Entry::XferRead).unwrap().added_on.unwrap()
        );
        // Ten reads scale linearly.
        let ten = rep
            .added_interval(&RefProfile {
                data_reads: 10,
                ..RefProfile::default()
            })
            .unwrap();
        assert_eq!(ten.min, one_read.min * 10);
        assert_eq!(ten.max, one_read.max * 10);
    }

    #[test]
    fn max_dilation_bounds_every_transfer_hook() {
        for style in [PatchStyle::Scratch, PatchStyle::Spill] {
            let rep = analyzed(style);
            let max = rep.max_dilation().unwrap();
            for e in [Entry::XferIFetch, Entry::XferRead, Entry::XferWrite] {
                let (_, hi) = rep.entry_hook(e).unwrap().dilation().unwrap();
                assert!(hi <= max);
            }
        }
    }

    #[test]
    fn stock_store_has_no_hooks_and_no_findings() {
        let cs = stock::build();
        let rep = analyze(&cs);
        assert!(rep.hooks.is_empty());
        assert!(rep.findings.is_empty());
    }

    #[test]
    fn buffer_full_halt_path_is_not_a_hot_loop() {
        // The full: path halts and retries via a back-edge to the
        // capacity check — a micro-cycle, but one that passes through a
        // Halt. It must not be flagged, and must not poison the bounds.
        let rep = analyzed(PatchStyle::Scratch);
        assert!(rep.findings.is_empty());
        for e in [Entry::XferIFetch, Entry::XferRead, Entry::XferWrite] {
            assert!(rep.entry_hook(e).unwrap().added_on.is_some());
        }
    }
}
