//! The ATUM trace-transparency verifier.
//!
//! A control-store patch is *transparent* when the architectural machine
//! cannot tell it is there: same register file, same condition codes,
//! same memory image (outside the reserved trace region), same faults,
//! and the displaced stock routine still runs. This pass proves that
//! statically for every installed hook:
//!
//! * **hook detection** — any entry slot, opcode-dispatch slot or
//!   specifier-dispatch slot pointing into the patch region
//!   (`addr >= stock_len`) is an installed hook. The displaced stock
//!   target is recovered from the store's own symbol table
//!   ([`Entry::symbol`] for entry hooks, the `i.<mnemonic>` convention
//!   for opcode hooks);
//! * **write discipline** — every word reachable from a hook writes only
//!   patch scratch (`P0`–`P7`) and `MAR`/`MDR`, never sets architectural
//!   condition codes, never moves the PC or the operand-size latch, and
//!   touches privileged state only through the four `TR*` trace
//!   registers;
//! * **no virtual memory traffic** — a virtual load or store can fault
//!   mid-patch, which would be architecturally visible; patches must use
//!   the physical transfers;
//! * **store bounds** — a small abstract interpreter tracks how each
//!   `MAR` value is derived (`TRPTR`-relative, `TRLIM`-relative,
//!   constant, caller-saved, unknown) and whether a `TRLIM − (TRPTR+k)`
//!   borrow check dominates the store; a physical store is accepted only
//!   inside the checked record window at `TRPTR` or inside the reserved
//!   spill line at `TRLIM`;
//! * **rejoin** — every terminating path leaves the patch through a jump
//!   to the hooked slot's original stock target, and (for the transfer
//!   hooks, which run with a live datapath) with `MAR`/`MDR` provably
//!   restored to the caller's values.
//!
//! What this pass deliberately cannot prove: timing (the ATUM slowdown
//! is a measured quantity), the engine's micro-op semantics themselves,
//! and bounds for address arithmetic shapes the patches do not use (an
//! exotic-but-correct derivation is reported as a finding rather than
//! silently trusted — the verifier is conservative by construction).

use crate::cfg::SymbolMap;
use crate::{Finding, Pass, Severity};
use atum_arch::{Opcode, PrivReg};
use atum_ucode::{AluOp, CcEffect, ControlStore, Entry, MicroCond, MicroOp, MicroReg, Target};
use std::collections::{HashMap, HashSet};

/// Bytes of each trace record (two longwords).
const RECORD_BYTES: i64 = 8;
/// Bytes of the reserved spill scratch line at `TRLIM` (eight longwords;
/// the tracer reserves them when a spill-style patch is installed).
const SPILL_LINE_BYTES: i64 = 32;
/// Micro-call depth bound inside a patch (the real micro-stack is
/// shallow; anything deeper is a runaway).
const MAX_CALL_DEPTH: usize = 8;

/// Which patchable slot a hook occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookSlot {
    /// An entry-table slot.
    Entry(Entry),
    /// An opcode-dispatch slot.
    Opcode(u8),
    /// A specifier-dispatch slot (table, high nibble).
    Spec(atum_ucode::SpecTable, u8),
}

/// An installed hook: a patchable slot re-pointed into the patch region.
#[derive(Debug, Clone)]
pub struct Hook {
    /// The slot, in typed form (the cost pass keys per-reference-class
    /// weighting off this).
    pub slot: HookSlot,
    /// Human description of the slot (`entry XferRead`, `opcode ldpctx`).
    pub desc: String,
    /// Patch-region address the slot points at.
    pub patch_addr: u32,
    /// The displaced stock target, when it can be recovered from the
    /// symbol table.
    pub expected: Option<u32>,
    /// Name of the displaced stock routine (for messages).
    pub expected_name: String,
    /// Whether the hook runs with a live datapath, requiring `MAR`/`MDR`
    /// to be provably restored at the rejoin (true for the transfer
    /// hooks, which are micro-called mid-instruction).
    pub restore_datapath: bool,
}

/// Finds every slot currently pointing into the patch region.
pub fn detect_hooks(cs: &ControlStore) -> Vec<Hook> {
    let stock_len = cs.stock_len();
    let mut out = Vec::new();
    for e in Entry::ALL {
        let t = cs.entry(e);
        if t >= stock_len && t < cs.len() {
            out.push(Hook {
                slot: HookSlot::Entry(e),
                desc: format!("entry {e:?}"),
                patch_addr: t,
                expected: cs.symbol(e.symbol()),
                expected_name: e.symbol().to_string(),
                restore_datapath: matches!(
                    e,
                    Entry::XferRead | Entry::XferWrite | Entry::XferIFetch
                ),
            });
        }
    }
    for b in 0..=255u8 {
        let t = cs.opcode_target(b);
        if t >= stock_len && t < cs.len() {
            let (expected, name) = match Opcode::from_byte(b) {
                Some(op) => {
                    let sym = format!("i.{}", op.mnemonic());
                    (cs.symbol(&sym), sym)
                }
                None => (Some(cs.fault_addr()), "<reserved-instruction fault>".into()),
            };
            out.push(Hook {
                slot: HookSlot::Opcode(b),
                desc: format!("opcode {b:#04x}"),
                patch_addr: t,
                expected,
                expected_name: name,
                restore_datapath: false,
            });
        }
    }
    for table in [
        atum_ucode::SpecTable::Read,
        atum_ucode::SpecTable::Write,
        atum_ucode::SpecTable::Modify,
        atum_ucode::SpecTable::Addr,
    ] {
        for nibble in 0..16u8 {
            let t = cs.spec_target(table, nibble);
            if t >= stock_len && t < cs.len() {
                out.push(Hook {
                    slot: HookSlot::Spec(table, nibble),
                    desc: format!("spec {table:?}/{nibble:#x}"),
                    patch_addr: t,
                    expected: None,
                    expected_name: "the stock specifier flow".into(),
                    restore_datapath: false,
                });
            }
        }
    }
    out
}

/// Abstract value: how a datapath register's contents were derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// Unknown.
    Top,
    /// A known constant.
    Const(u32),
    /// The hook caller's value of the given register (live at entry).
    Init(MicroReg),
    /// A snapshot of privileged register `pr` plus a byte offset.
    Pr { pr: u32, off: i64 },
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            self
        } else {
            AbsVal::Top
        }
    }

    fn describe(self) -> String {
        match self {
            AbsVal::Top => "an unknown address".into(),
            AbsVal::Const(c) => format!("constant address {c:#x}"),
            AbsVal::Init(r) => format!("the caller's {r}"),
            AbsVal::Pr { pr, off } => match PrivReg::from_number(pr) {
                Some(p) => format!("{}{off:+}", p.mnemonic()),
                None => format!("pr[{pr}]{off:+}"),
            },
        }
    }
}

/// Tracked registers: `P0`–`P7`, `MAR`, `MDR`.
fn slot(r: MicroReg) -> Option<usize> {
    match r {
        MicroReg::P(n) if n < 8 => Some(n as usize),
        MicroReg::Mar => Some(8),
        MicroReg::Mdr => Some(9),
        _ => None,
    }
}

/// Abstract machine state along one path through the patch.
#[derive(Debug, Clone, PartialEq)]
struct State {
    regs: [AbsVal; 10],
    /// Operands of the last `Sub` (micro-carry = borrow = `a < b`).
    cmp: Option<(AbsVal, AbsVal)>,
    /// Proven headroom: `TRLIM − TRPTR ≥ checked` holds on this path.
    checked: i64,
}

impl State {
    fn entry() -> State {
        let mut regs = [AbsVal::Top; 10];
        regs[8] = AbsVal::Init(MicroReg::Mar);
        regs[9] = AbsVal::Init(MicroReg::Mdr);
        State {
            regs,
            cmp: None,
            checked: 0,
        }
    }

    fn join(&self, other: &State) -> State {
        let mut regs = [AbsVal::Top; 10];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = self.regs[i].join(other.regs[i]);
        }
        State {
            regs,
            cmp: match (self.cmp, other.cmp) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            checked: self.checked.min(other.checked),
        }
    }

    fn eval(&self, r: MicroReg) -> AbsVal {
        match r {
            MicroReg::Imm(v) => AbsVal::Const(v),
            _ => slot(r).map_or(AbsVal::Top, |i| self.regs[i]),
        }
    }

    fn set(&mut self, r: MicroReg, v: AbsVal) {
        if let Some(i) = slot(r) {
            self.regs[i] = v;
        }
    }
}

/// A call frame: the routine extent being executed and, for callees, the
/// return address in the caller.
type Frame = (u32, u32, Option<u32>);

/// Runs the transparency verifier over every detected hook.
pub fn check(cs: &ControlStore) -> Vec<Finding> {
    let map = SymbolMap::new(cs);
    let mut v = Verifier {
        cs,
        map: &map,
        stock_len: cs.stock_len(),
        findings: Vec::new(),
        emitted: HashSet::new(),
    };
    for hook in detect_hooks(cs) {
        v.verify_hook(&hook);
    }
    v.findings.sort_by_key(|f| f.addr);
    v.findings
}

struct Verifier<'a> {
    cs: &'a ControlStore,
    map: &'a SymbolMap,
    stock_len: u32,
    findings: Vec<Finding>,
    emitted: HashSet<(u32, String)>,
}

impl Verifier<'_> {
    fn emit(&mut self, addr: u32, severity: Severity, message: String) {
        if self.emitted.insert((addr, message.clone())) {
            self.findings.push(Finding {
                pass: Pass::Transparency,
                severity,
                symbol: self.map.name(addr),
                addr,
                message,
            });
        }
    }

    fn extent_of(&self, addr: u32) -> (u32, u32) {
        let start = self.map.routine_start(addr).unwrap_or(addr);
        let end = self.map.routine_end(start, self.cs.len());
        (start, end)
    }

    /// Per-word legality: destinations, condition codes, privileged
    /// writes, virtual memory traffic, architectural side effects.
    fn check_word(&mut self, addr: u32, op: MicroOp) {
        let bad_dst = |v: &mut Self, dst: MicroReg| {
            if slot(dst).is_none() {
                v.emit(
                    addr,
                    Severity::Error,
                    format!("patch writes {dst}, which is architecturally visible state"),
                );
            }
        };
        match op {
            MicroOp::Mov { dst, .. } => bad_dst(self, dst),
            MicroOp::Alu { dst, cc, .. } => {
                bad_dst(self, dst);
                if cc != CcEffect::None {
                    self.emit(
                        addr,
                        Severity::Error,
                        format!("patch ALU op sets architectural condition codes (cc {cc:?})"),
                    );
                }
            }
            MicroOp::ReadPr { dst, .. } => bad_dst(self, dst),
            MicroOp::WritePr { num, src: _ } => {
                let ok = matches!(
                    num,
                    MicroReg::Imm(n) if [
                        PrivReg::Trctl.number(),
                        PrivReg::Trbase.number(),
                        PrivReg::Trptr.number(),
                        PrivReg::Trlim.number(),
                    ]
                    .contains(&n)
                );
                if !ok {
                    let which = match num {
                        MicroReg::Imm(n) => PrivReg::from_number(n)
                            .map(|p| p.mnemonic().to_string())
                            .unwrap_or_else(|| format!("pr[{n}]")),
                        other => format!("a dynamically selected register ({other})"),
                    };
                    self.emit(
                        addr,
                        Severity::Error,
                        format!("patch writes privileged register {which}; only the TR* trace registers are invisible to the OS"),
                    );
                }
            }
            MicroOp::SetSize(_) | MicroOp::SetSizeDyn(_) => self.emit(
                addr,
                Severity::Error,
                "patch alters the operand-size latch the interrupted flow depends on".into(),
            ),
            MicroOp::Read { .. } => self.emit(
                addr,
                Severity::Error,
                "virtual load in a patch can fault mid-instruction; use phys.read".into(),
            ),
            MicroOp::Write { .. } => self.emit(
                addr,
                Severity::Error,
                "virtual store in a patch can fault and touches paged memory; use phys.write into the reserved region".into(),
            ),
            MicroOp::AdvancePc => self.emit(
                addr,
                Severity::Error,
                "patch advances the architectural PC".into(),
            ),
            MicroOp::TbFlushAll | MicroOp::TbFlushProc => self.emit(
                addr,
                Severity::Warning,
                "patch flushes the translation buffer (architecturally invisible but perturbs the machine being traced)".into(),
            ),
            _ => {}
        }
    }

    /// Abstract transfer for the word's data effect.
    fn apply(&mut self, addr: u32, op: MicroOp, st: &mut State) {
        match op {
            MicroOp::Mov { src, dst } => {
                let v = st.eval(src);
                st.set(dst, v);
            }
            MicroOp::Alu {
                op: alu,
                a,
                b,
                dst,
                size,
                ..
            } => {
                let av = st.eval(a);
                let bv = st.eval(b);
                let long = size == atum_arch::DataSize::Long;
                let val = match alu {
                    AluOp::Add if long => match (av, bv) {
                        (AbsVal::Const(x), AbsVal::Const(y)) => AbsVal::Const(x.wrapping_add(y)),
                        (AbsVal::Pr { pr, off }, AbsVal::Const(c))
                        | (AbsVal::Const(c), AbsVal::Pr { pr, off }) => AbsVal::Pr {
                            pr,
                            off: off + c as i64,
                        },
                        _ => AbsVal::Top,
                    },
                    AluOp::Sub if long => match (av, bv) {
                        (AbsVal::Const(x), AbsVal::Const(y)) => AbsVal::Const(x.wrapping_sub(y)),
                        (AbsVal::Pr { pr, off }, AbsVal::Const(c)) => AbsVal::Pr {
                            pr,
                            off: off - c as i64,
                        },
                        _ => AbsVal::Top,
                    },
                    _ => AbsVal::Top,
                };
                st.cmp = if alu == AluOp::Sub && long {
                    Some((av, bv))
                } else {
                    None
                };
                st.set(dst, val);
            }
            MicroOp::ReadPr { num, dst } => {
                let v = match st.eval(num) {
                    AbsVal::Const(n) => AbsVal::Pr { pr: n, off: 0 },
                    _ => AbsVal::Top,
                };
                st.set(dst, v);
            }
            MicroOp::PhysRead => st.set(MicroReg::Mdr, AbsVal::Top),
            MicroOp::PhysWrite => self.check_store(addr, st),
            MicroOp::WritePr { num, .. }
                if st.eval(num) == AbsVal::Const(PrivReg::Trptr.number()) =>
            {
                // The pointer moved: snapshots and the headroom proof
                // refer to the old value.
                for r in st.regs.iter_mut() {
                    if matches!(r, AbsVal::Pr { pr, .. } if *pr == PrivReg::Trptr.number()) {
                        *r = AbsVal::Top;
                    }
                }
                st.checked = 0;
            }
            _ => {}
        }
    }

    /// A physical store is accepted only inside the checked record
    /// window at `TRPTR` or inside the reserved spill line at `TRLIM`.
    fn check_store(&mut self, addr: u32, st: &State) {
        let mar = st.regs[8];
        let ok = match mar {
            AbsVal::Pr { pr, off } if pr == PrivReg::Trptr.number() => {
                if st.checked >= RECORD_BYTES && (0..=st.checked - 4).contains(&off) {
                    true
                } else {
                    self.emit(
                        addr,
                        Severity::Error,
                        format!(
                            "physical store at trptr{off:+} is not covered by a trlim bounds check (proven headroom: {} bytes)",
                            st.checked
                        ),
                    );
                    return;
                }
            }
            AbsVal::Pr { pr, off }
                if pr == PrivReg::Trlim.number() && (0..=SPILL_LINE_BYTES - 4).contains(&off) =>
            {
                true
            }
            _ => false,
        };
        if !ok {
            self.emit(
                addr,
                Severity::Error,
                format!(
                    "physical store through {} is outside the reserved trace region",
                    mar.describe()
                ),
            );
        }
    }

    fn verify_hook(&mut self, hook: &Hook) {
        let len = self.cs.len();
        let base = self.extent_of(hook.patch_addr);
        let mut states: HashMap<(Vec<Frame>, u32), State> = HashMap::new();
        let mut work: Vec<(Vec<Frame>, u32)> = Vec::new();
        let root_ctx = vec![(base.0, base.1, None)];
        states.insert((root_ctx.clone(), hook.patch_addr), State::entry());
        work.push((root_ctx, hook.patch_addr));
        let mut rejoined = false;

        // Propagate `state` to `(ctx, addr)`, re-queueing on change.
        macro_rules! flow {
            ($states:expr, $work:expr, $ctx:expr, $addr:expr, $state:expr) => {{
                let key = ($ctx, $addr);
                match $states.get(&key) {
                    Some(old) => {
                        let joined = old.join(&$state);
                        if joined != *old {
                            $states.insert(key.clone(), joined);
                            $work.push(key);
                        }
                    }
                    None => {
                        $states.insert(key.clone(), $state);
                        $work.push(key);
                    }
                }
            }};
        }

        while let Some((ctx, addr)) = work.pop() {
            let st0 = states[&(ctx.clone(), addr)].clone();
            let op = self.cs.word(addr);
            self.check_word(addr, op);
            let (rstart, rend, _) = *ctx.last().expect("non-empty context");

            // Non-control data effects (including the store check).
            let mut st = st0.clone();
            self.apply(addr, op, &mut st);

            // Fall-through successor, shared by several arms below.
            let fall = |v: &mut Self,
                        states: &mut HashMap<(Vec<Frame>, u32), State>,
                        work: &mut Vec<(Vec<Frame>, u32)>,
                        state: State| {
                let next = addr + 1;
                if next >= rend || next < rstart {
                    v.emit(
                        addr,
                        Severity::Error,
                        format!(
                            "patch falls through the end of {} without rejoining the stock flow",
                            v.map.name(rstart)
                        ),
                    );
                } else {
                    flow!(states, work, ctx.clone(), next, state);
                }
            };

            match op {
                MicroOp::Jump(t) => {
                    self.branch_edge(
                        hook, t, addr, &ctx, rstart, rend, st, &mut states, &mut work,
                        &mut rejoined,
                    );
                }
                MicroOp::JumpIf { cond, target } => {
                    // Refine the headroom proof on carry-test edges.
                    let (mut taken, mut nottaken) = (st.clone(), st.clone());
                    if let Some((a, b)) = st.cmp {
                        if let (
                            AbsVal::Pr { pr: pa, off: ao },
                            AbsVal::Pr { pr: pb, off: bo },
                        ) = (a, b)
                        {
                            if pa == PrivReg::Trlim.number() && pb == PrivReg::Trptr.number() {
                                // carry ⇔ TRLIM+ao < TRPTR+bo; the no-borrow
                                // side proves TRLIM − TRPTR ≥ bo − ao.
                                let headroom = bo - ao;
                                match cond {
                                    MicroCond::UCarry => {
                                        nottaken.checked = nottaken.checked.max(headroom)
                                    }
                                    MicroCond::UNoCarry => {
                                        taken.checked = taken.checked.max(headroom)
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                    self.branch_edge(
                        hook, target, addr, &ctx, rstart, rend, taken, &mut states, &mut work,
                        &mut rejoined,
                    );
                    fall(self, &mut states, &mut work, nottaken);
                }
                MicroOp::Call(t) => match t {
                    Target::Entry(e) => self.emit(
                        addr,
                        Severity::Error,
                        format!("patch calls through patchable entry slot {e:?} (re-enters the patch)"),
                    ),
                    Target::Abs(tgt) if tgt < self.stock_len => self.emit(
                        addr,
                        Severity::Error,
                        format!(
                            "patch calls into stock microcode at {} (transparency unverifiable)",
                            self.map.name(tgt)
                        ),
                    ),
                    Target::Abs(tgt) if tgt >= len => self.emit(
                        addr,
                        Severity::Error,
                        format!("call target {tgt:#06x} outside the store"),
                    ),
                    Target::Abs(tgt) => {
                        if ctx.len() >= MAX_CALL_DEPTH {
                            self.emit(
                                addr,
                                Severity::Error,
                                "patch micro-call depth exceeds the verifier bound (runaway recursion?)"
                                    .into(),
                            );
                        } else {
                            let (cstart, cend) = self.extent_of(tgt);
                            let mut cctx = ctx.clone();
                            cctx.push((cstart, cend, Some(addr + 1)));
                            flow!(&mut states, &mut work, cctx, tgt, st);
                        }
                    }
                },
                MicroOp::Ret => {
                    let (.., ret) = *ctx.last().expect("non-empty context");
                    match ret {
                        Some(ret_addr) => {
                            let mut rctx = ctx.clone();
                            rctx.pop();
                            let (prstart, prend, _) = *rctx.last().expect("caller frame");
                            if ret_addr >= prend || ret_addr < prstart {
                                self.emit(
                                    addr,
                                    Severity::Error,
                                    format!(
                                        "patch subroutine returns past the end of {}",
                                        self.map.name(prstart)
                                    ),
                                );
                            } else {
                                flow!(&mut states, &mut work, rctx, ret_addr, st);
                            }
                        }
                        None => self.emit(
                            addr,
                            Severity::Error,
                            "patch returns to the micro-caller without running the displaced stock routine"
                                .into(),
                        ),
                    }
                }
                MicroOp::DecodeNext => self.emit(
                    addr,
                    Severity::Error,
                    "patch ends the architectural instruction (decode.next) instead of rejoining the stock flow"
                        .into(),
                ),
                MicroOp::Fault(k) => self.emit(
                    addr,
                    Severity::Error,
                    format!("patch raises a {k:?} fault, which is architecturally visible"),
                ),
                MicroOp::DispatchOpcode | MicroOp::DispatchSpec(_) => self.emit(
                    addr,
                    Severity::Error,
                    "patch re-dispatches through a patchable table".into(),
                ),
                _ => fall(self, &mut states, &mut work, st),
            }
        }

        if !rejoined {
            self.emit(
                hook.patch_addr,
                Severity::Error,
                format!(
                    "{}: no path rejoins the stock flow at the displaced {}",
                    hook.desc, hook.expected_name
                ),
            );
        }
    }

    /// Handles a jump edge: rejoin into stock, intra-routine branch, or
    /// escape.
    #[allow(clippy::too_many_arguments)]
    fn branch_edge(
        &mut self,
        hook: &Hook,
        t: Target,
        addr: u32,
        ctx: &[Frame],
        rstart: u32,
        rend: u32,
        state: State,
        states: &mut HashMap<(Vec<Frame>, u32), State>,
        work: &mut Vec<(Vec<Frame>, u32)>,
        rejoined: &mut bool,
    ) {
        match t {
            Target::Entry(e) => self.emit(
                addr,
                Severity::Error,
                format!("patch jumps through patchable entry slot {e:?} (re-enters the patch)"),
            ),
            Target::Abs(tgt) if tgt < self.stock_len => {
                // A rejoin into the stock flow.
                match hook.expected {
                    Some(e) if tgt == e => {
                        *rejoined = true;
                        if hook.restore_datapath
                            && (state.regs[8] != AbsVal::Init(MicroReg::Mar)
                                || state.regs[9] != AbsVal::Init(MicroReg::Mdr))
                        {
                            self.emit(
                                addr,
                                Severity::Error,
                                format!(
                                    "rejoins {} with unrestored datapath (mar = {}, mdr = {})",
                                    hook.expected_name,
                                    state.regs[8].describe(),
                                    state.regs[9].describe()
                                ),
                            );
                        }
                    }
                    Some(e) => self.emit(
                        addr,
                        Severity::Error,
                        format!(
                            "rejoins the stock flow at {} instead of the displaced {} ({e:#06x})",
                            self.map.name(tgt),
                            hook.expected_name
                        ),
                    ),
                    None => *rejoined = true,
                }
            }
            Target::Abs(tgt) if tgt >= self.cs.len() => {
                // Out-of-store: the structural pass reports it.
            }
            Target::Abs(tgt) if tgt >= rstart && tgt < rend => {
                let key_ctx: Vec<Frame> = ctx.to_vec();
                match states.get(&(key_ctx.clone(), tgt)) {
                    Some(old) => {
                        let joined = old.join(&state);
                        if joined != *old {
                            states.insert((key_ctx.clone(), tgt), joined);
                            work.push((key_ctx, tgt));
                        }
                    }
                    None => {
                        states.insert((key_ctx.clone(), tgt), state);
                        work.push((key_ctx, tgt));
                    }
                }
            }
            Target::Abs(tgt) => self.emit(
                addr,
                Severity::Error,
                format!(
                    "patch escapes its routine into {} without rejoining the stock flow",
                    self.map.name(tgt)
                ),
            ),
        }
    }
}
