//! Structural checks over the micro-CFG.
//!
//! Proves four properties a control store must have before anything else
//! about it is worth asking:
//!
//! 1. **no wild branches** — every `Target::Abs` in a reachable word, and
//!    every entry-table and dispatch-table slot, lands inside the store;
//! 2. **full dispatch coverage** — all 256 opcode slots and all 4×16
//!    specifier slots point somewhere real (unassigned opcodes must point
//!    at the reserved-instruction fault routine, not at word 0 garbage);
//! 3. **no fall-through off the end** — no reachable word can advance
//!    past the last micro-word (a real sequencer would fetch garbage);
//! 4. **no orphan routines** — every symbol is reachable from some
//!    engine entry point (an unreachable routine is dead WCS weight at
//!    best, a mis-wired dispatch slot at worst).

use crate::cfg::{self, SymbolMap};
use crate::{Finding, Pass, Severity};
use atum_ucode::{ControlStore, Entry, MicroOp, SpecTable, Target};

fn finding(map: &SymbolMap, addr: u32, severity: Severity, message: String) -> Finding {
    Finding {
        pass: Pass::Structural,
        severity,
        symbol: map.name(addr),
        addr,
        message,
    }
}

/// Runs all structural checks.
pub fn check(cs: &ControlStore) -> Vec<Finding> {
    let map = SymbolMap::new(cs);
    let len = cs.len();
    let mut out = Vec::new();

    // 1a. Entry table in range.
    for e in Entry::ALL {
        let t = cs.entry(e);
        if t >= len {
            out.push(finding(
                &map,
                t.min(len.saturating_sub(1)),
                Severity::Error,
                format!("entry slot {e:?} points at {t:#06x}, outside the {len}-word store"),
            ));
        }
    }
    // 1b/2. Dispatch tables in range.
    for b in 0..=255u8 {
        let t = cs.opcode_target(b);
        if t >= len {
            out.push(finding(
                &map,
                0,
                Severity::Error,
                format!("opcode dispatch slot {b:#04x} points at {t:#06x}, outside the store"),
            ));
        }
    }
    for table in [
        SpecTable::Read,
        SpecTable::Write,
        SpecTable::Modify,
        SpecTable::Addr,
    ] {
        for nibble in 0..16u8 {
            let t = cs.spec_target(table, nibble);
            if t >= len {
                out.push(finding(
                    &map,
                    0,
                    Severity::Error,
                    format!(
                        "specifier dispatch {table:?}/{nibble:#x} points at {t:#06x}, outside the store"
                    ),
                ));
            }
        }
    }

    let reachable = cfg::reachable(cs);

    // 1c. Absolute targets of reachable words in range; 3. fall-through
    // off the end.
    for addr in 0..len {
        if !reachable[addr as usize] {
            continue;
        }
        let op = cs.word(addr);
        let target = match op {
            MicroOp::Jump(Target::Abs(t)) => Some(t),
            MicroOp::JumpIf {
                target: Target::Abs(t),
                ..
            } => Some(t),
            MicroOp::Call(Target::Abs(t)) => Some(t),
            _ => None,
        };
        if let Some(t) = target {
            if t >= len {
                out.push(finding(
                    &map,
                    addr,
                    Severity::Error,
                    format!("branch target {t:#06x} outside the {len}-word store"),
                ));
            }
        }
        if addr + 1 == len && cfg::falls_through(op) {
            out.push(finding(
                &map,
                addr,
                Severity::Error,
                "last micro-word can fall through off the end of the store".to_string(),
            ));
        }
    }

    // 4. Every routine reachable.
    let mut orphans: Vec<(u32, &str)> = cs
        .symbols()
        .iter()
        .filter(|(_, &a)| (a as usize) < reachable.len() && !reachable[a as usize])
        .map(|(n, &a)| (a, n.as_str()))
        .collect();
    orphans.sort_unstable();
    for (addr, name) in orphans {
        out.push(Finding {
            pass: Pass::Structural,
            severity: Severity::Error,
            symbol: name.to_string(),
            addr,
            message: format!("routine '{name}' is unreachable from every engine entry point"),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_ucode::stock;

    #[test]
    fn stock_store_is_structurally_clean() {
        let cs = stock::build();
        let findings = check(&cs);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn orphan_routine_is_reported_with_symbol_and_address() {
        let mut cs = stock::build();
        let addr = cs.append_routine("orphan.routine", vec![MicroOp::Ret]);
        let findings = check(&cs);
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.severity, Severity::Error);
        assert_eq!(f.symbol, "orphan.routine");
        assert_eq!(f.addr, addr);
        assert!(f.message.contains("unreachable"), "{f}");
    }

    #[test]
    fn wild_branch_is_reported() {
        let mut cs = stock::build();
        let wild = cs.len() + 100;
        let addr = cs.append_routine("bad.jump", vec![MicroOp::Jump(Target::Abs(wild))]);
        cs.set_entry(Entry::XferRead, addr);
        let findings = check(&cs);
        assert!(
            findings
                .iter()
                .any(|f| f.addr == addr && f.message.contains("outside")),
            "{findings:#?}"
        );
    }

    #[test]
    fn fall_through_off_the_end_is_reported() {
        let mut cs = stock::build();
        let addr = cs.append_routine(
            "bad.fall",
            vec![MicroOp::Mov {
                src: atum_ucode::MicroReg::Imm(0),
                dst: atum_ucode::MicroReg::P(0),
            }],
        );
        cs.set_entry(Entry::XferRead, addr);
        let findings = check(&cs);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("fall through off the end")),
            "{findings:#?}"
        );
    }
}
