//! The ATUM hook atomicity verifier and state-partition extractor.
//!
//! The transparency pass proves a patch is invisible to an *undisturbed*
//! execution. This pass proves the hooks survive the three ways the
//! machine can be disturbed mid-hook — and pins down the state
//! partition the SMP work will be checked against:
//!
//! * **(a) fault-window safety** — a page fault or a raised micro-fault
//!   diverts into `ExcDispatch`, which is *itself hooked*: the re-entered
//!   hook clobbers the patch scratch (`P0`–`P7`) and the saved
//!   `MAR`/`MDR` the interrupted hook still needs. The only sound shape
//!   is therefore *no fault-permissible point inside a hook closure* —
//!   every virtual transfer or `Fault` micro-op reachable from a hook is
//!   an error (the shared [`cfg::can_fault`] predicate enumerates them).
//!   The same argument covers interrupt delivery: a `DecodeNext` inside
//!   a hook would open an interrupt window over live scratch;
//! * **(b) trace-pointer protocol** — every hook must follow
//!   read-`TRPTR` → prove headroom against `TRLIM` → store the record
//!   strictly inside the proven window → advance `TRPTR` *last*, as the
//!   single linearization point of the record. A drain observing `TRPTR`
//!   at any micro-cycle then never sees a pointer covering torn or
//!   unwritten records. The abstract interpreter re-proves the headroom
//!   the way the transparency pass does, but — unlike transparency — it
//!   *wipes* the proof at every [`MicroOp::Halt`]: the halt is the
//!   buffer-full drain window, and the host may reset `TRPTR` there, so
//!   headroom and pointer snapshots proven before a halt are stale after
//!   it. It also tracks which record longwords have been written on
//!   every path, and rejects an advance that publishes bytes no store
//!   covered. Spill-line scratch is checked for cross-routine conflicts:
//!   two different hook routines parking state in the same `TRLIM` line
//!   would clobber each other when hooks nest;
//! * **(c) state partition** — every register and memory region the
//!   reachable control store touches is classified as
//!   [`StateClass::PerContext`] (swapped or owned by the running
//!   process: GPRs, datapath latches, the PCB and per-process page
//!   tables), [`StateClass::PerCpuCandidate`] (what SMP must replicate
//!   per processor: patch scratch, the `TR*` registers, the trace
//!   buffer and spill line, the translation buffer), or
//!   [`StateClass::Shared`] (system-wide: SCB, system page table,
//!   clock, console, soft-IRQ state). Hooks may touch only the first
//!   two classes — a hook reading or writing shared state races the
//!   other CPUs' hooks the moment there *is* another CPU. The partition
//!   is exported machine-readably ([`partition`] /
//!   [`StatePartition::to_json`], surfaced by `mculist verify --format
//!   json`).
//!
//! What this pass deliberately cannot prove: that the MOSS drain itself
//! respects `TRPTR` (the drain reads the buffer from the host side; the
//! SMP pass must re-check that per CPU against per-CPU pointers), that
//! the host console restores `TRPTR`/`TRCTL` coherently after a
//! full-buffer halt (the protocol proof only shows the microcode
//! re-reads them before trusting them), or anything about memory-system
//! ordering — the micro-engine retires one micro-op at a time, so
//! "advance last" is a real linearization point here; a weaker memory
//! model would need fences this micro-ISA cannot spell.

use crate::cfg::{self, SymbolMap};
use crate::{dataflow, transparency, Finding, Pass, Severity};
use atum_arch::PrivReg;
use atum_ucode::{AluOp, ControlStore, MicroCond, MicroOp, MicroReg, Target};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Bytes of each trace record (two longwords).
const RECORD_BYTES: i64 = 8;
/// Bytes of the reserved spill scratch line at `TRLIM`.
const SPILL_LINE_BYTES: i64 = 32;
/// Micro-call depth bound inside a patch (transparency reports the
/// runaway; this pass just stops descending).
const MAX_CALL_DEPTH: usize = 8;

/// Which sharing class a piece of machine state falls in — the
/// disjointness contract the SMP per-CPU buffers will be checked
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StateClass {
    /// Owned by (or swapped with) the running process context: GPRs,
    /// datapath latches, the banked stack pointers, PCB base,
    /// per-process page tables and the memory they map.
    PerContext,
    /// Must become per-processor state under SMP: patch scratch, the
    /// `TR*` trace registers, the trace buffer and spill line, the
    /// translation buffer.
    PerCpuCandidate,
    /// Genuinely system-wide: SCB, system page table, interval clock,
    /// console, software-interrupt state, the map-enable switch.
    Shared,
    /// The classifier could not place it — always accompanied by a
    /// finding, and must never appear for the shipped artifacts.
    Unclassified,
}

impl StateClass {
    /// The snake_case name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            StateClass::PerContext => "per_context",
            StateClass::PerCpuCandidate => "per_cpu_candidate",
            StateClass::Shared => "shared",
            StateClass::Unclassified => "unclassified",
        }
    }
}

/// One classified piece of state and who touches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionEntry {
    /// Canonical name (`r0`, `trptr`, `process control block`, …).
    pub name: String,
    /// The sharing class.
    pub class: StateClass,
    /// Touched by reachable microcode outside the hook closures.
    pub stock: bool,
    /// Touched by an installed hook's closure.
    pub hooks: bool,
}

/// The full register/memory state partition of a control store.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatePartition {
    /// Every register the reachable store touches, in canonical order
    /// (datapath registers, then privileged registers by number).
    pub registers: Vec<PartitionEntry>,
    /// Every memory region the reachable store touches, in canonical
    /// order.
    pub memory: Vec<PartitionEntry>,
}

impl StatePartition {
    /// Renders the partition as a JSON object (hand-rolled, like the
    /// rest of the `mculist` JSON surface).
    pub fn to_json(&self) -> String {
        fn entries(out: &mut String, list: &[PartitionEntry]) {
            out.push('[');
            for (i, e) in list.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"class\":\"{}\",\"stock\":{},\"hooks\":{}}}",
                    e.name,
                    e.class.name(),
                    e.stock,
                    e.hooks
                ));
            }
            out.push(']');
        }
        let mut out = String::from("{\"registers\":");
        entries(&mut out, &self.registers);
        out.push_str(",\"memory\":");
        entries(&mut out, &self.memory);
        out.push('}');
        out
    }
}

/// Classifies a datapath register operand (`Imm` is not state). Returns
/// the canonical name, the class and a stable sort key.
fn classify_reg(r: MicroReg) -> Option<(String, StateClass, u32)> {
    use StateClass::*;
    let (name, class, key) = match r {
        MicroReg::Gpr(n) => (format!("r{n}"), PerContext, n as u32),
        MicroReg::T(n) => (format!("t{n}"), PerContext, 100 + n as u32),
        MicroReg::P(n) => (format!("p{n}"), PerCpuCandidate, 200 + n as u32),
        MicroReg::Mar => ("mar".into(), PerContext, 300),
        MicroReg::Mdr => ("mdr".into(), PerContext, 301),
        MicroReg::Psl => ("psl".into(), PerContext, 302),
        MicroReg::Spec => ("spec".into(), PerContext, 303),
        MicroReg::OpReg => ("opreg".into(), PerContext, 304),
        MicroReg::RegNum => ("regnum".into(), PerContext, 305),
        MicroReg::GprIdx => ("gpr[regnum]".into(), PerContext, 306),
        MicroReg::OSizeBytes => ("osize".into(), PerContext, 307),
        MicroReg::OSizeMask => ("omask".into(), PerContext, 308),
        MicroReg::IbData => ("ibdata".into(), PerContext, 309),
        MicroReg::IbCnt => ("ibcnt".into(), PerContext, 310),
        MicroReg::ExcVec => ("excvec".into(), PerContext, 311),
        MicroReg::ExcParam => ("excparam".into(), PerContext, 312),
        MicroReg::ExcFlags => ("excflags".into(), PerContext, 313),
        MicroReg::ExcPc => ("excpc".into(), PerContext, 314),
        MicroReg::ExcIpl => ("excipl".into(), PerContext, 315),
        MicroReg::Imm(_) => return None,
    };
    Some((name, class, key))
}

/// Classifies a privileged register by number.
fn classify_pr(num: u32) -> StateClass {
    use StateClass::*;
    match PrivReg::from_number(num) {
        // Swapped by ldpctx / banked with the process.
        Some(
            PrivReg::Ksp
            | PrivReg::Usp
            | PrivReg::P0br
            | PrivReg::P0lr
            | PrivReg::P1br
            | PrivReg::P1lr
            | PrivReg::Pcbb
            | PrivReg::Ipl,
        ) => PerContext,
        // Trace machinery and the translation buffer: exactly what SMP
        // must replicate per processor.
        Some(
            PrivReg::Trctl
            | PrivReg::Trbase
            | PrivReg::Trptr
            | PrivReg::Trlim
            | PrivReg::Tbia
            | PrivReg::Tbis,
        ) => PerCpuCandidate,
        // System-wide.
        Some(
            PrivReg::Sbr
            | PrivReg::Slr
            | PrivReg::Scbb
            | PrivReg::Sirr
            | PrivReg::Sisr
            | PrivReg::Iccs
            | PrivReg::Icr
            | PrivReg::Txdb
            | PrivReg::Txcs
            | PrivReg::Rxdb
            | PrivReg::Rxcs
            | PrivReg::Mapen,
        ) => Shared,
        None => Unclassified,
    }
}

/// The memory regions the classifier knows, in canonical report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Region {
    VirtualSpace,
    Pcb,
    ProcessPageTables,
    SystemPageTable,
    Scb,
    TraceBuffer,
    SpillLine,
    Unclassified,
}

impl Region {
    fn name(self) -> &'static str {
        match self {
            Region::VirtualSpace => "virtual address space",
            Region::Pcb => "process control block",
            Region::ProcessPageTables => "per-process page tables",
            Region::SystemPageTable => "system page table",
            Region::Scb => "system control block",
            Region::TraceBuffer => "trace buffer",
            Region::SpillLine => "trace spill line",
            Region::Unclassified => "unclassified physical memory",
        }
    }

    fn class(self) -> StateClass {
        match self {
            Region::VirtualSpace | Region::Pcb | Region::ProcessPageTables => {
                StateClass::PerContext
            }
            Region::TraceBuffer | Region::SpillLine => StateClass::PerCpuCandidate,
            Region::SystemPageTable | Region::Scb => StateClass::Shared,
            Region::Unclassified => StateClass::Unclassified,
        }
    }

    /// The region a physical access lands in, given the privileged
    /// register its `MAR` derivation is based on.
    fn of_base(pr: u32) -> Region {
        match PrivReg::from_number(pr) {
            Some(PrivReg::Pcbb) => Region::Pcb,
            Some(PrivReg::Scbb) => Region::Scb,
            Some(PrivReg::P0br | PrivReg::P1br) => Region::ProcessPageTables,
            Some(PrivReg::Sbr) => Region::SystemPageTable,
            Some(PrivReg::Trbase | PrivReg::Trptr) => Region::TraceBuffer,
            Some(PrivReg::Trlim) => Region::SpillLine,
            _ => Region::Unclassified,
        }
    }
}

/// Runs the atomicity verifier: fault-window safety and the
/// trace-pointer protocol over every installed hook, plus the
/// partition-discipline check that hooks touch no shared state.
pub fn check(cs: &ControlStore) -> Vec<Finding> {
    analyze(cs).0
}

/// Extracts the register/memory state partition of the reachable store.
pub fn partition(cs: &ControlStore) -> StatePartition {
    analyze(cs).1
}

fn analyze(cs: &ControlStore) -> (Vec<Finding>, StatePartition) {
    let map = SymbolMap::new(cs);
    let reachable = cfg::reachable(cs);
    let stock_len = cs.stock_len();

    // Addresses belonging to some installed hook's closure (the stubs
    // plus the shared logger, chased through whatever edges stay inside
    // the patch region).
    let hooks = transparency::detect_hooks(cs);
    let mut hook_words: HashSet<u32> = HashSet::new();
    for h in &hooks {
        for a in cfg::region_closure(cs, h.patch_addr, stock_len, cs.len()) {
            hook_words.insert(a);
        }
    }

    let mut an = Analysis {
        cs,
        map: &map,
        hook_words,
        findings: Vec::new(),
        emitted: HashSet::new(),
        regs: BTreeMap::new(),
        memory: BTreeMap::new(),
        spill_writers: BTreeMap::new(),
    };

    // Obligation (c), register side, and the partition's register rows.
    for addr in 0..cs.len() {
        if reachable[addr as usize] {
            an.classify_word(addr, cs.word(addr));
        }
    }

    // Obligation (c), memory side, and the partition's memory rows.
    an.walk_regions(&reachable);

    // Obligations (a) and (b) over every installed hook.
    for h in &hooks {
        an.walk_hook(h);
    }
    an.check_spill_conflicts();

    let registers = an.regs.values().cloned().collect();
    let memory = an.memory.values().cloned().collect();
    let mut findings = an.findings;
    findings.sort_by(|a, b| (&a.symbol, a.addr).cmp(&(&b.symbol, b.addr)));
    (findings, StatePartition { registers, memory })
}

struct Analysis<'a> {
    cs: &'a ControlStore,
    map: &'a SymbolMap,
    hook_words: HashSet<u32>,
    findings: Vec<Finding>,
    emitted: HashSet<(u32, String)>,
    /// Keyed `(group, key)` for canonical ordering: datapath registers
    /// (group 0, layout order), privileged registers (group 1, by
    /// number), dynamically selected PRs (group 2).
    regs: BTreeMap<(u8, u32), PartitionEntry>,
    memory: BTreeMap<Region, PartitionEntry>,
    /// Spill-line conflict map: byte offset → hook routines that store
    /// there, with one representative store address each.
    spill_writers: BTreeMap<i64, Vec<(String, u32)>>,
}

impl Analysis<'_> {
    fn emit(&mut self, addr: u32, severity: Severity, message: String) {
        if self.emitted.insert((addr, message.clone())) {
            self.findings.push(Finding {
                pass: Pass::Atomicity,
                severity,
                symbol: self.map.name(addr),
                addr,
                message,
            });
        }
    }

    fn extent_of(&self, addr: u32) -> (u32, u32) {
        let start = self.map.routine_start(addr).unwrap_or(addr);
        let end = self.map.routine_end(start, self.cs.len());
        (start, end)
    }

    fn touch_reg(&mut self, addr: u32, key: (u8, u32), name: String, class: StateClass) {
        let in_hook = self.hook_words.contains(&addr);
        let e = self.regs.entry(key).or_insert_with(|| PartitionEntry {
            name: name.clone(),
            class,
            stock: false,
            hooks: false,
        });
        if in_hook {
            e.hooks = true;
        } else {
            e.stock = true;
        }
        if in_hook && class == StateClass::Shared {
            self.emit(
                addr,
                Severity::Error,
                format!("hook touches shared state ({name}); hooks may touch only per-context and per-CPU-candidate state"),
            );
        }
    }

    fn touch_region(&mut self, addr: u32, region: Region) {
        let in_hook = self.hook_words.contains(&addr);
        let e = self.memory.entry(region).or_insert_with(|| PartitionEntry {
            name: region.name().into(),
            class: region.class(),
            stock: false,
            hooks: false,
        });
        if in_hook {
            e.hooks = true;
        } else {
            e.stock = true;
        }
        match region.class() {
            StateClass::Unclassified => self.emit(
                addr,
                Severity::Error,
                "physical memory access whose address derivation the partition cannot classify"
                    .into(),
            ),
            StateClass::Shared if in_hook => self.emit(
                addr,
                Severity::Error,
                format!(
                    "hook touches shared memory ({}); hooks may touch only per-context and per-CPU-candidate state",
                    region.name()
                ),
            ),
            _ => {}
        }
    }

    /// Partition bookkeeping for one reachable word: every register it
    /// reads or writes, including privileged registers.
    fn classify_word(&mut self, addr: u32, op: MicroOp) {
        for r in dataflow::reads(op).into_iter().chain(dataflow::writes(op)) {
            if let Some((name, class, key)) = classify_reg(r) {
                self.touch_reg(addr, (0, key), name, class);
            }
        }
        if let MicroOp::ReadPr { num, .. } | MicroOp::WritePr { num, .. } = op {
            match num {
                MicroReg::Imm(n) => {
                    let class = classify_pr(n);
                    let name = PrivReg::from_number(n)
                        .map(|p| p.mnemonic().to_string())
                        .unwrap_or_else(|| format!("pr[{n}]"));
                    if class == StateClass::Unclassified {
                        self.emit(
                            addr,
                            Severity::Error,
                            format!("access to privileged register {name}, which the state partition cannot classify"),
                        );
                    }
                    self.touch_reg(addr, (1, n), name, class);
                }
                _ => {
                    // The stock mtpr/mfpr flows select the register at
                    // run time; the partition must assume the worst.
                    self.touch_reg(addr, (2, 0), "pr[dynamic]".into(), StateClass::Shared);
                }
            }
        }
        if matches!(op, MicroOp::TbFlushAll | MicroOp::TbFlushProc) {
            self.touch_reg(
                addr,
                (1, PrivReg::Tbia.number()),
                PrivReg::Tbia.mnemonic().into(),
                StateClass::PerCpuCandidate,
            );
        }
    }

    // ---- memory-region walk (obligation (c), memory side) ----

    /// Walks every reachable routine with a context-free abstract
    /// interpreter tracking how `MAR` is derived, and classifies every
    /// memory micro-op's target region. The microcode keeps its address
    /// derivations inside one routine (PCB traffic from `pcbb`, SCB
    /// traffic from `scbb`, trace traffic from `trptr`/`trlim`), so a
    /// per-routine walk with callee write havoc resolves every shipped
    /// access.
    fn walk_regions(&mut self, reachable: &[bool]) {
        let len = self.cs.len();
        let mut starts: Vec<u32> = (0..len)
            .filter(|&a| reachable[a as usize])
            .map(|a| self.map.routine_start(a).unwrap_or(a))
            .collect();
        starts.sort_unstable();
        starts.dedup();

        // Transitive per-routine write sets over the tracked slots, so a
        // micro-call havocs exactly what its callee may clobber.
        let mut direct: HashMap<u32, (Vec<usize>, Vec<u32>)> = HashMap::new();
        for &start in &starts {
            let end = self.map.routine_end(start, len);
            let mut wr: Vec<usize> = Vec::new();
            let mut callees: Vec<u32> = Vec::new();
            for addr in start..end {
                if !reachable[addr as usize] {
                    continue;
                }
                let op = self.cs.word(addr);
                for r in dataflow::writes(op) {
                    if let Some(i) = av_slot(r) {
                        if !wr.contains(&i) {
                            wr.push(i);
                        }
                    }
                }
                if let MicroOp::Call(t) = op {
                    let tgt = cfg::resolve(self.cs, t);
                    if tgt < len {
                        callees.push(self.map.routine_start(tgt).unwrap_or(tgt));
                    }
                }
            }
            direct.insert(start, (wr, callees));
        }
        let mut havoc: HashMap<u32, Vec<usize>> =
            starts.iter().map(|&s| (s, direct[&s].0.clone())).collect();
        loop {
            let mut changed = false;
            for &s in &starts {
                for c in direct[&s].1.clone() {
                    let add: Vec<usize> = havoc.get(&c).cloned().unwrap_or_default();
                    let set = havoc.get_mut(&s).expect("routine present");
                    for i in add {
                        if !set.contains(&i) {
                            set.push(i);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        for &start in &starts {
            let end = self.map.routine_end(start, len);
            let mut visited: HashSet<u32> = HashSet::new();
            let mut seed = Some(start);
            while let Some(entry) = seed {
                self.walk_routine(entry, start, end, &havoc, &mut visited);
                // Conservative fallback for words only enterable from
                // outside their routine (the shipped store has none).
                seed = (start..end).find(|&a| reachable[a as usize] && !visited.contains(&a));
            }
        }
    }

    /// One fixpoint walk inside `[lo, hi)` from `entry`, starting from
    /// all-Top state.
    fn walk_routine(
        &mut self,
        entry: u32,
        lo: u32,
        hi: u32,
        havoc: &HashMap<u32, Vec<usize>>,
        visited: &mut HashSet<u32>,
    ) {
        fn flow(
            states: &mut HashMap<u32, Vec<Av>>,
            work: &mut Vec<u32>,
            lo: u32,
            hi: u32,
            tgt: u32,
            st: &[Av],
        ) {
            if tgt < lo || tgt >= hi {
                return;
            }
            match states.get_mut(&tgt) {
                Some(old) => {
                    let mut changed = false;
                    for (o, &n) in old.iter_mut().zip(st) {
                        let j = o.join(n);
                        if j != *o {
                            *o = j;
                            changed = true;
                        }
                    }
                    if changed {
                        work.push(tgt);
                    }
                }
                None => {
                    states.insert(tgt, st.to_vec());
                    work.push(tgt);
                }
            }
        }

        let mut states: HashMap<u32, Vec<Av>> = HashMap::new();
        let mut work: Vec<u32> = vec![entry];
        states.insert(entry, vec![Av::Top; AV_SLOTS]);
        while let Some(addr) = work.pop() {
            visited.insert(addr);
            let mut st = states[&addr].clone();
            let op = self.cs.word(addr);
            match op {
                MicroOp::Mov { src, dst } => {
                    let v = av_eval(&st, src);
                    av_set(&mut st, dst, v);
                }
                MicroOp::Alu {
                    op: alu,
                    a,
                    b,
                    dst,
                    size,
                    ..
                } => {
                    let av = av_eval(&st, a);
                    let bv = av_eval(&st, b);
                    let long = size == atum_arch::DataSize::Long;
                    let v = match alu {
                        AluOp::Add if long => av.add(bv),
                        AluOp::Sub if long => av.sub(bv),
                        _ => Av::Top,
                    };
                    av_set(&mut st, dst, v);
                }
                MicroOp::ReadPr { num, dst } => {
                    let v = match num {
                        MicroReg::Imm(n) => Av::PrOff {
                            pr: n,
                            off: Some(0),
                        },
                        _ => Av::Top,
                    };
                    av_set(&mut st, dst, v);
                }
                MicroOp::PhysRead | MicroOp::PhysWrite => {
                    let region = match av_eval(&st, MicroReg::Mar) {
                        Av::PrOff { pr, .. } => Region::of_base(pr),
                        _ => Region::Unclassified,
                    };
                    self.touch_region(addr, region);
                    if op == MicroOp::PhysRead {
                        av_set(&mut st, MicroReg::Mdr, Av::Top);
                    }
                }
                MicroOp::Read { .. } => {
                    self.touch_region(addr, Region::VirtualSpace);
                    av_set(&mut st, MicroReg::Mdr, Av::Top);
                }
                MicroOp::Write { .. } => self.touch_region(addr, Region::VirtualSpace),
                MicroOp::Call(t) => {
                    let tgt = cfg::resolve(self.cs, t);
                    let callee = self.map.routine_start(tgt).unwrap_or(tgt);
                    match havoc.get(&callee) {
                        Some(set) => {
                            for &i in set {
                                st[i] = Av::Top;
                            }
                        }
                        None => st.iter_mut().for_each(|v| *v = Av::Top),
                    }
                }
                _ => {}
            }
            match op {
                MicroOp::Jump(t) => flow(
                    &mut states,
                    &mut work,
                    lo,
                    hi,
                    cfg::resolve(self.cs, t),
                    &st,
                ),
                MicroOp::JumpIf { target, .. } => {
                    flow(
                        &mut states,
                        &mut work,
                        lo,
                        hi,
                        cfg::resolve(self.cs, target),
                        &st,
                    );
                    flow(&mut states, &mut work, lo, hi, addr + 1, &st);
                }
                _ => {
                    if cfg::falls_through(op) {
                        flow(&mut states, &mut work, lo, hi, addr + 1, &st);
                    }
                }
            }
        }
    }

    // ---- hook protocol walk (obligations (a) and (b)) ----

    /// Context-sensitive worklist walk over one hook's closure, checking
    /// fault windows and the trace-pointer protocol. Control-flow
    /// *policy* (rejoin discipline, escapes, patchable-slot re-entry) is
    /// transparency's job; this walker simply stops at edges that leave
    /// the patch.
    fn walk_hook(&mut self, hook: &transparency::Hook) {
        type Frame = (u32, u32, Option<u32>);
        type Key = (Vec<Frame>, u32);

        fn flow(states: &mut HashMap<Key, HState>, work: &mut Vec<Key>, key: Key, st: HState) {
            match states.get(&key) {
                Some(old) => {
                    let joined = old.join(&st);
                    if joined != *old {
                        states.insert(key.clone(), joined);
                        work.push(key);
                    }
                }
                None => {
                    states.insert(key.clone(), st);
                    work.push(key);
                }
            }
        }

        let len = self.cs.len();
        let stock_len = self.cs.stock_len();
        let base = self.extent_of(hook.patch_addr);
        let mut states: HashMap<Key, HState> = HashMap::new();
        let mut work: Vec<Key> = Vec::new();
        let root_ctx: Vec<Frame> = vec![(base.0, base.1, None)];
        states.insert((root_ctx.clone(), hook.patch_addr), HState::entry());
        work.push((root_ctx, hook.patch_addr));

        while let Some((ctx, addr)) = work.pop() {
            let st0 = states[&(ctx.clone(), addr)].clone();
            let op = self.cs.word(addr);
            let (rstart, rend, _) = *ctx.last().expect("non-empty context");

            // Obligation (a): no fault window over live hook state. A
            // fault diverts into the (hooked) exception dispatch, whose
            // hook clobbers the patch scratch and the saved MAR/MDR this
            // hook still needs.
            if cfg::can_fault(op) {
                let live: Vec<String> = (0..8)
                    .filter(|&i| st0.regs[i] != HV::Top)
                    .map(|i| format!("p{i}"))
                    .collect();
                let live = if live.is_empty() {
                    "the patch scratch".to_string()
                } else {
                    format!("live patch scratch ({})", live.join(", "))
                };
                self.emit(
                    addr,
                    Severity::Error,
                    format!(
                        "fault-permissible point inside a hook: a fault here re-enters the trace hooks and clobbers {live} and the saved mar/mdr"
                    ),
                );
            } else if op == MicroOp::DecodeNext {
                self.emit(
                    addr,
                    Severity::Error,
                    "instruction boundary inside a hook opens an interrupt window over live patch scratch".into(),
                );
            }

            // Data effects, including the store/advance protocol checks.
            let mut st = st0.clone();
            self.hook_apply(addr, op, &mut st);

            // Control flow.
            match op {
                MicroOp::Jump(t) => {
                    if let Target::Abs(tgt) = t {
                        if tgt >= stock_len && tgt < len {
                            flow(&mut states, &mut work, (ctx.clone(), tgt), st);
                        }
                        // Into stock: the hook is over. Elsewhere:
                        // transparency reports the escape.
                    }
                }
                MicroOp::JumpIf { cond, target } => {
                    // Refine the headroom proof on the carry-test edges,
                    // exactly as transparency does.
                    let (mut taken, mut nottaken) = (st.clone(), st.clone());
                    if let Some((HV::Pr { pr: pa, off: ao }, HV::Pr { pr: pb, off: bo })) = st.cmp {
                        if pa == PrivReg::Trlim.number() && pb == PrivReg::Trptr.number() {
                            let headroom = bo - ao;
                            match cond {
                                MicroCond::UCarry => {
                                    nottaken.checked = nottaken.checked.max(headroom)
                                }
                                MicroCond::UNoCarry => taken.checked = taken.checked.max(headroom),
                                _ => {}
                            }
                        }
                    }
                    if let Target::Abs(tgt) = target {
                        if tgt >= stock_len && tgt < len {
                            flow(&mut states, &mut work, (ctx.clone(), tgt), taken);
                        }
                    }
                    let next = addr + 1;
                    if next >= rstart && next < rend {
                        flow(&mut states, &mut work, (ctx.clone(), next), nottaken);
                    }
                }
                MicroOp::Call(Target::Abs(tgt))
                    if tgt >= stock_len && tgt < len && ctx.len() < MAX_CALL_DEPTH =>
                {
                    let (cstart, cend) = self.extent_of(tgt);
                    let mut cctx = ctx.clone();
                    cctx.push((cstart, cend, Some(addr + 1)));
                    flow(&mut states, &mut work, (cctx, tgt), st);
                }
                MicroOp::Ret => {
                    if let (.., Some(ret)) = *ctx.last().expect("non-empty context") {
                        let mut rctx = ctx.clone();
                        rctx.pop();
                        let (pstart, pend, _) = *rctx.last().expect("caller frame");
                        if ret >= pstart && ret < pend {
                            flow(&mut states, &mut work, (rctx, ret), st);
                        }
                    }
                }
                MicroOp::Call(_)
                | MicroOp::DecodeNext
                | MicroOp::Fault(_)
                | MicroOp::DispatchOpcode
                | MicroOp::DispatchSpec(_) => {}
                _ => {
                    // Straight-line ops, including Halt (which falls
                    // through when the host resumes the engine).
                    let next = addr + 1;
                    if next >= rstart && next < rend {
                        flow(&mut states, &mut work, (ctx.clone(), next), st);
                    }
                }
            }
        }
    }

    /// Abstract transfer for one hook word, enforcing the trace-pointer
    /// protocol (obligation (b)).
    fn hook_apply(&mut self, addr: u32, op: MicroOp, st: &mut HState) {
        match op {
            MicroOp::Mov { src, dst } => {
                let v = st.eval(src);
                st.set(dst, v);
            }
            MicroOp::Alu {
                op: alu,
                a,
                b,
                dst,
                size,
                ..
            } => {
                let av = st.eval(a);
                let bv = st.eval(b);
                let long = size == atum_arch::DataSize::Long;
                let val = match alu {
                    AluOp::Add if long => match (av, bv) {
                        (HV::Const(x), HV::Const(y)) => HV::Const(x.wrapping_add(y)),
                        (HV::Pr { pr, off }, HV::Const(c)) | (HV::Const(c), HV::Pr { pr, off }) => {
                            HV::Pr {
                                pr,
                                off: off + c as i64,
                            }
                        }
                        _ => HV::Top,
                    },
                    AluOp::Sub if long => match (av, bv) {
                        (HV::Const(x), HV::Const(y)) => HV::Const(x.wrapping_sub(y)),
                        (HV::Pr { pr, off }, HV::Const(c)) => HV::Pr {
                            pr,
                            off: off - c as i64,
                        },
                        _ => HV::Top,
                    },
                    _ => HV::Top,
                };
                st.cmp = if alu == AluOp::Sub && long {
                    Some((av, bv))
                } else {
                    None
                };
                st.set(dst, val);
            }
            MicroOp::ReadPr { num, dst } => {
                let v = match st.eval(num) {
                    HV::Const(n) => {
                        if n == PrivReg::Trptr.number() {
                            // A fresh pointer read starts a new protocol
                            // round: a later advance is that round's own
                            // linearization point.
                            st.advanced = false;
                        }
                        HV::Pr { pr: n, off: 0 }
                    }
                    _ => HV::Top,
                };
                st.set(dst, v);
            }
            MicroOp::PhysRead => st.set(MicroReg::Mdr, HV::Top),
            MicroOp::PhysWrite => self.hook_store(addr, st),
            MicroOp::WritePr { num, src } => {
                if st.eval(num) == HV::Const(PrivReg::Trptr.number()) {
                    self.hook_advance(addr, st, src);
                } else if st.eval(num) == HV::Const(PrivReg::Trlim.number()) {
                    // Moving the bound invalidates the headroom proof
                    // and every TRLIM-derived snapshot.
                    for r in st.regs.iter_mut() {
                        if matches!(r, HV::Pr { pr, .. } if *pr == PrivReg::Trlim.number()) {
                            *r = HV::Top;
                        }
                    }
                    st.checked = 0;
                    st.cmp = None;
                }
            }
            MicroOp::Halt => {
                // The buffer-full drain window: the host may reset TRPTR
                // while the engine is halted, so every pointer snapshot,
                // the headroom proof and the stored-longword evidence
                // are stale on resume.
                for r in st.regs.iter_mut() {
                    if matches!(r, HV::Pr { pr, .. } if *pr == PrivReg::Trptr.number()) {
                        *r = HV::Top;
                    }
                }
                st.checked = 0;
                st.stored = 0;
                st.cmp = None;
            }
            _ => {}
        }
    }

    /// A physical store inside a hook must land in the proven record
    /// window at `TRPTR` — before the advance — or in the spill line at
    /// `TRLIM` (which is then checked for cross-routine conflicts).
    fn hook_store(&mut self, addr: u32, st: &mut HState) {
        match st.regs[8] {
            HV::Pr { pr, off } if pr == PrivReg::Trptr.number() => {
                if st.advanced {
                    self.emit(
                        addr,
                        Severity::Error,
                        "record store after the trptr advance: the advance must be the hook's last record effect (single linearization point)".into(),
                    );
                } else if st.checked >= RECORD_BYTES
                    && off >= 0
                    && off % 4 == 0
                    && off <= st.checked - 4
                {
                    if off / 4 < 32 {
                        st.stored |= 1u32 << (off / 4);
                    }
                } else {
                    self.emit(
                        addr,
                        Severity::Error,
                        format!(
                            "record store at trptr{off:+} is not covered by headroom proven since the last drain window (proven: {} bytes)",
                            st.checked
                        ),
                    );
                }
            }
            HV::Pr { pr, off }
                if pr == PrivReg::Trlim.number() && (0..=SPILL_LINE_BYTES - 4).contains(&off) =>
            {
                let routine = self
                    .map
                    .routine_start(addr)
                    .map(|s| self.map.name(s))
                    .unwrap_or_else(|| format!("@{addr:#06x}"));
                let writers = self.spill_writers.entry(off).or_default();
                if !writers.iter().any(|(n, _)| *n == routine) {
                    writers.push((routine, addr));
                }
            }
            other => self.emit(
                addr,
                Severity::Error,
                format!(
                    "hook store through {} is outside the trace-pointer protocol (record window or spill line)",
                    other.describe()
                ),
            ),
        }
    }

    /// The `TRPTR` advance: the hook's single linearization point. The
    /// published pointer must be derived from the current round's
    /// pointer read, stay inside the proven headroom, and every record
    /// longword it publishes must have been stored on *every* path here.
    fn hook_advance(&mut self, addr: u32, st: &mut HState, src: MicroReg) {
        match st.eval(src) {
            HV::Pr { pr, off } if pr == PrivReg::Trptr.number() => {
                if off <= 0 {
                    self.emit(
                        addr,
                        Severity::Error,
                        format!("trptr advance by {off} bytes does not move the pointer past the record"),
                    );
                } else if off % 4 != 0 {
                    self.emit(
                        addr,
                        Severity::Error,
                        format!("trptr advance by {off} bytes is not longword-aligned"),
                    );
                } else if off > st.checked {
                    self.emit(
                        addr,
                        Severity::Error,
                        format!(
                            "trptr advanced by {off} bytes but only {} bytes of headroom are proven",
                            st.checked
                        ),
                    );
                } else {
                    let lw = off / 4;
                    let need = if lw >= 32 { u32::MAX } else { (1u32 << lw) - 1 };
                    if st.stored & need != need {
                        self.emit(
                            addr,
                            Severity::Error,
                            format!(
                                "trptr advanced by {off} bytes over record longwords no store has written on every path — a drain here would publish a torn record"
                            ),
                        );
                    }
                }
            }
            other => self.emit(
                addr,
                Severity::Error,
                format!(
                    "trptr advanced to {}, which is not derived from the current trptr read",
                    other.describe()
                ),
            ),
        }
        // The pointer moved: old-pointer snapshots and evidence are
        // stale, and no further record store may follow this round.
        for r in st.regs.iter_mut() {
            if matches!(r, HV::Pr { pr, .. } if *pr == PrivReg::Trptr.number()) {
                *r = HV::Top;
            }
        }
        st.checked = 0;
        st.stored = 0;
        st.cmp = None;
        st.advanced = true;
    }

    fn check_spill_conflicts(&mut self) {
        let conflicts: Vec<(i64, Vec<(String, u32)>)> = self
            .spill_writers
            .iter()
            .filter(|(_, v)| v.len() > 1)
            .map(|(&off, v)| (off, v.clone()))
            .collect();
        for (off, writers) in conflicts {
            let names: Vec<&str> = writers.iter().map(|(n, _)| n.as_str()).collect();
            let addr = writers.last().expect("non-empty").1;
            self.emit(
                addr,
                Severity::Error,
                format!(
                    "spill-line scratch at trlim{off:+} is written by {} — nested hooks would clobber each other's saved state",
                    names.join(" and ")
                ),
            );
        }
    }
}

// ---- abstract values for the region walk ----

/// Tracked slots: `T0`–`T15`, `P0`–`P7`, `MAR`, `MDR`.
const AV_SLOTS: usize = 26;

fn av_slot(r: MicroReg) -> Option<usize> {
    match r {
        MicroReg::T(n) if n < 16 => Some(n as usize),
        MicroReg::P(n) if n < 8 => Some(16 + n as usize),
        MicroReg::Mar => Some(24),
        MicroReg::Mdr => Some(25),
        _ => None,
    }
}

/// Abstract value for the region walk: a privileged-register base plus a
/// possibly unknown byte offset. The PCB save/restore loops compute
/// their offsets through the junk register, so "`pcbb` plus *something*"
/// must survive where a constant offset cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Av {
    Top,
    Const(u32),
    PrOff { pr: u32, off: Option<i64> },
}

impl Av {
    fn join(self, other: Av) -> Av {
        if self == other {
            return self;
        }
        match (self, other) {
            (Av::PrOff { pr: a, .. }, Av::PrOff { pr: b, .. }) if a == b => {
                Av::PrOff { pr: a, off: None }
            }
            _ => Av::Top,
        }
    }

    fn add(self, other: Av) -> Av {
        match (self, other) {
            (Av::Const(x), Av::Const(y)) => Av::Const(x.wrapping_add(y)),
            (Av::PrOff { pr, off }, Av::Const(c)) | (Av::Const(c), Av::PrOff { pr, off }) => {
                Av::PrOff {
                    pr,
                    off: off.map(|o| o + c as i64),
                }
            }
            (Av::PrOff { pr, .. }, Av::Top) | (Av::Top, Av::PrOff { pr, .. }) => {
                Av::PrOff { pr, off: None }
            }
            _ => Av::Top,
        }
    }

    fn sub(self, other: Av) -> Av {
        match (self, other) {
            (Av::Const(x), Av::Const(y)) => Av::Const(x.wrapping_sub(y)),
            (Av::PrOff { pr, off }, Av::Const(c)) => Av::PrOff {
                pr,
                off: off.map(|o| o - c as i64),
            },
            _ => Av::Top,
        }
    }
}

fn av_eval(st: &[Av], r: MicroReg) -> Av {
    match r {
        MicroReg::Imm(v) => Av::Const(v),
        _ => av_slot(r).map_or(Av::Top, |i| st[i]),
    }
}

fn av_set(st: &mut [Av], r: MicroReg, v: Av) {
    if let Some(i) = av_slot(r) {
        st[i] = v;
    }
}

// ---- abstract values and state for the hook protocol walk ----

/// Abstract value in the hook walk: same derivation lattice as the
/// transparency pass (`Init` marks the caller's live value at hook
/// entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HV {
    Top,
    Const(u32),
    Init(MicroReg),
    Pr { pr: u32, off: i64 },
}

impl HV {
    fn join(self, other: HV) -> HV {
        if self == other {
            self
        } else {
            HV::Top
        }
    }

    fn describe(self) -> String {
        match self {
            HV::Top => "an unknown value".into(),
            HV::Const(c) => format!("constant {c:#x}"),
            HV::Init(r) => format!("the caller's {r}"),
            HV::Pr { pr, off } => match PrivReg::from_number(pr) {
                Some(p) => format!("{}{off:+}", p.mnemonic()),
                None => format!("pr[{pr}]{off:+}"),
            },
        }
    }
}

/// Tracked hook registers: `P0`–`P7`, `MAR`, `MDR`.
fn hook_slot(r: MicroReg) -> Option<usize> {
    match r {
        MicroReg::P(n) if n < 8 => Some(n as usize),
        MicroReg::Mar => Some(8),
        MicroReg::Mdr => Some(9),
        _ => None,
    }
}

/// Abstract state along one path through a hook.
#[derive(Debug, Clone, PartialEq)]
struct HState {
    regs: [HV; 10],
    /// Operands of the last `Sub` (micro-carry = borrow = `a < b`).
    cmp: Option<(HV, HV)>,
    /// Headroom proven *in this protocol round*: `TRLIM − TRPTR ≥
    /// checked` held at the last carry test, with no drain window since.
    checked: i64,
    /// Record longwords (relative to the round's pointer read) written
    /// on every path reaching this point.
    stored: u32,
    /// Whether this round's `TRPTR` advance has already happened.
    advanced: bool,
}

impl HState {
    fn entry() -> HState {
        let mut regs = [HV::Top; 10];
        regs[8] = HV::Init(MicroReg::Mar);
        regs[9] = HV::Init(MicroReg::Mdr);
        HState {
            regs,
            cmp: None,
            checked: 0,
            stored: 0,
            advanced: false,
        }
    }

    fn join(&self, other: &HState) -> HState {
        let mut regs = [HV::Top; 10];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = self.regs[i].join(other.regs[i]);
        }
        HState {
            regs,
            cmp: match (self.cmp, other.cmp) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            checked: self.checked.min(other.checked),
            stored: self.stored & other.stored,
            advanced: self.advanced || other.advanced,
        }
    }

    fn eval(&self, r: MicroReg) -> HV {
        match r {
            MicroReg::Imm(v) => HV::Const(v),
            _ => hook_slot(r).map_or(HV::Top, |i| self.regs[i]),
        }
    }

    fn set(&mut self, r: MicroReg, v: HV) {
        if let Some(i) = hook_slot(r) {
            self.regs[i] = v;
        }
    }
}
