//! Def-use dataflow over micro-registers.
//!
//! Three checks:
//!
//! 1. **never-written reads** — a reachable read of a micro-temporary
//!    (`T0`–`T15`, `P0`–`P7`) that no reachable word ever writes. The
//!    engine zero-initialises the register file, so such a read computes
//!    with a constant the author almost certainly did not intend;
//! 2. **dead writes** — a micro-temporary written somewhere but never
//!    read anywhere. `T15` is exempt: it is the documented junk
//!    destination for flag-setting ALU ops;
//! 3. **the `P` reservation** — no word in the *stock* region may touch
//!    `P0`–`P7` in any operand position. This is the invariant the whole
//!    ATUM patch scheme rests on: the patches may clobber patch scratch
//!    freely precisely because stock microcode provably never reads or
//!    writes it.
//!
//! The def-use sets are global over the reachable store rather than
//! path-sensitive: the stock microcode passes values between routines
//! through documented register conventions (`T0` = specifier result and
//! so on), so per-path uninitialised-read analysis would drown in false
//! positives at routine boundaries. The global check is the sound core:
//! a register read *somewhere* but written *nowhere* is a defect no
//! convention can excuse.

use crate::cfg::{self, SymbolMap};
use crate::{Finding, Pass, Severity};
use atum_ucode::{ControlStore, MicroOp, MicroReg};

/// Register operands the word at `addr` reads. Includes the implicit
/// `MAR`/`MDR` traffic of the memory micro-ops.
pub fn reads(op: MicroOp) -> Vec<MicroReg> {
    match op {
        MicroOp::Mov { src, .. } => vec![src],
        MicroOp::Alu { a, b, .. } => vec![a, b],
        MicroOp::SetSizeDyn(r) => vec![r],
        MicroOp::Read { .. } | MicroOp::PhysRead => vec![MicroReg::Mar],
        MicroOp::Write { .. } | MicroOp::PhysWrite => vec![MicroReg::Mar, MicroReg::Mdr],
        MicroOp::ReadPr { num, .. } => vec![num],
        MicroOp::WritePr { num, src } => vec![num, src],
        _ => Vec::new(),
    }
}

/// Register operands the word at `addr` writes. Includes the implicit
/// `MDR` result of the memory reads.
pub fn writes(op: MicroOp) -> Vec<MicroReg> {
    match op {
        MicroOp::Mov { dst, .. } => vec![dst],
        MicroOp::Alu { dst, .. } => vec![dst],
        MicroOp::Read { .. } | MicroOp::PhysRead => vec![MicroReg::Mdr],
        MicroOp::ReadPr { dst, .. } => vec![dst],
        _ => Vec::new(),
    }
}

/// Index for micro-temporaries in the def-use tables: `T0`–`T15` then
/// `P0`–`P7`.
fn temp_index(r: MicroReg) -> Option<usize> {
    match r {
        MicroReg::T(n) if n < 16 => Some(n as usize),
        MicroReg::P(n) if n < 8 => Some(16 + n as usize),
        _ => None,
    }
}

fn temp_name(i: usize) -> String {
    if i < 16 {
        format!("t{i}")
    } else {
        format!("p{}", i - 16)
    }
}

/// The documented junk destination (`T15`); flag-setting ops write it
/// with no intention of it ever being read.
const JUNK_INDEX: usize = 15;

/// Runs the def-use checks.
pub fn check(cs: &ControlStore) -> Vec<Finding> {
    let map = SymbolMap::new(cs);
    let reachable = cfg::reachable(cs);
    let mut out = Vec::new();

    // First reachable read/write site per micro-temporary.
    let mut first_read: [Option<u32>; 24] = [None; 24];
    let mut first_write: [Option<u32>; 24] = [None; 24];

    for addr in 0..cs.len() {
        let op = cs.word(addr);

        // The P reservation is checked over the whole stock region,
        // reachable or not: dead stock code touching patch scratch is
        // still a landmine for the next patch author.
        if addr < cs.stock_len() {
            for r in reads(op).into_iter().chain(writes(op)) {
                if matches!(r, MicroReg::P(_)) {
                    out.push(Finding {
                        pass: Pass::Dataflow,
                        severity: Severity::Error,
                        symbol: map.name(addr),
                        addr,
                        message: format!(
                            "stock micro-word touches patch scratch {r} (reserved for patches)"
                        ),
                    });
                    break;
                }
            }
        }

        if !reachable[addr as usize] {
            continue;
        }
        for r in reads(op) {
            if let Some(i) = temp_index(r) {
                first_read[i].get_or_insert(addr);
            }
        }
        for r in writes(op) {
            if let Some(i) = temp_index(r) {
                first_write[i].get_or_insert(addr);
            }
        }
    }

    for i in 0..24 {
        match (first_read[i], first_write[i]) {
            (Some(read_at), None) => out.push(Finding {
                pass: Pass::Dataflow,
                severity: Severity::Error,
                symbol: map.name(read_at),
                addr: read_at,
                message: format!(
                    "read of micro-temporary {} which no reachable word ever writes",
                    temp_name(i)
                ),
            }),
            (None, Some(write_at)) if i != JUNK_INDEX => out.push(Finding {
                pass: Pass::Dataflow,
                severity: Severity::Warning,
                symbol: map.name(write_at),
                addr: write_at,
                message: format!(
                    "dead write: micro-temporary {} is written but never read",
                    temp_name(i)
                ),
            }),
            _ => {}
        }
    }

    out.sort_by_key(|f| f.addr);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_ucode::{stock, Entry, Target};

    #[test]
    fn stock_store_is_dataflow_clean() {
        let cs = stock::build();
        let findings = check(&cs);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn never_written_read_is_reported() {
        let mut cs = stock::build();
        // Reading a temp the stock code writes is fine; use a P register
        // nothing in this store ever writes.
        let addr = cs.append_routine(
            "bad.uninit",
            vec![
                MicroOp::Mov {
                    src: MicroReg::P(6),
                    dst: MicroReg::Mar,
                },
                MicroOp::Jump(Target::Abs(cs.entry(Entry::XferRead))),
            ],
        );
        cs.set_entry(Entry::XferRead, addr);
        let findings = check(&cs);
        assert!(
            findings
                .iter()
                .any(|f| f.symbol == "bad.uninit"
                    && f.message.contains("no reachable word ever writes")),
            "{findings:#?}"
        );
    }

    #[test]
    fn stock_p_use_is_reported() {
        // A synthetic store whose "stock" region touches P3.
        let mut cs = atum_ucode::ControlStore::new();
        cs.append_routine(
            "stock.bad",
            vec![
                MicroOp::Mov {
                    src: MicroReg::Imm(1),
                    dst: MicroReg::P(3),
                },
                MicroOp::Jump(Target::Abs(0)),
            ],
        );
        cs.seal_stock();
        let findings = check(&cs);
        let f = findings
            .iter()
            .find(|f| f.message.contains("patch scratch"))
            .expect("stock P use must be flagged");
        assert_eq!(f.symbol, "stock.bad");
        assert_eq!(f.addr, 0);
        assert_eq!(f.severity, Severity::Error);
    }
}
