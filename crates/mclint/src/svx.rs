//! Static lint over assembled SVX images (the MOSS kernel and the
//! workload programs).
//!
//! The image is disassembled by reachability from its entry symbols —
//! never linearly, because data (`state`, `pcbtab`, string tables) lives
//! between routines and linear sweeps would drown in junk decodes. Three
//! checks run over the reachable instructions:
//!
//! 1. **call/return discipline** — a procedure entered with `calls` must
//!    return with `ret` (which unwinds the `calls` frame) and one entered
//!    with `bsbb`/`bsbw`/`jsb` must return with `rsb` (which pops only
//!    the PC). Mixing the two unbalances the stack by a frame;
//! 2. **privilege** — user-mode images must not contain reachable
//!    privileged instructions (`halt`, `rei`, `ldpctx`, `svpctx`,
//!    `mtpr`, `mfpr`); they would fault at run time;
//! 3. **SCB coverage** (kernel images) — boot code must initialise every
//!    exception vector the machine can deliver, by a reachable
//!    `movl #handler, @#SCB+offset`. An uninitialised vector sends the
//!    machine through a zero longword on the first fault of that kind.
//!    The console receive/transmit vectors are deliberately *not*
//!    required: MOSS polls the console through the host harness and
//!    never raises its IPL below the console level, so those interrupts
//!    cannot be delivered.
//!
//! What this pass deliberately cannot do: follow dynamic transfers
//! (`jmp (rN)`, computed `jsb`) — such targets are simply not traversed —
//! and it cannot prove stack *depth* balance, only that entry and return
//! styles agree.

use crate::{Finding, Pass, Severity};
use atum_arch::{DecodedInsn, Opcode, Operand, ScbVector};
use atum_asm::Image;
use atum_os::SYSTEM_VA;
use std::collections::{BTreeMap, HashMap, HashSet};

/// What mode an image runs in (decides which checks apply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageKind {
    /// The MOSS kernel: privileged instructions allowed, SCB coverage
    /// required.
    Kernel,
    /// A workload program: runs in user mode.
    User,
}

/// Vectors the kernel must initialise before any process runs.
fn required_vectors() -> Vec<(u32, &'static str)> {
    vec![
        (ScbVector::MachineCheck.offset(), "machine check"),
        (
            ScbVector::KernelStackInvalid.offset(),
            "kernel stack invalid",
        ),
        (
            ScbVector::ReservedInstruction.offset(),
            "reserved instruction",
        ),
        (ScbVector::ReservedOperand.offset(), "reserved operand"),
        (
            ScbVector::ReservedAddrMode.offset(),
            "reserved addressing mode",
        ),
        (ScbVector::AccessViolation.offset(), "access violation"),
        (
            ScbVector::TranslationInvalid.offset(),
            "translation invalid",
        ),
        (ScbVector::TraceTrap.offset(), "trace trap"),
        (ScbVector::Breakpoint.offset(), "breakpoint"),
        (ScbVector::Arithmetic.offset(), "arithmetic trap"),
        (ScbVector::Chmk.offset(), "chmk system call"),
        (ScbVector::IntervalTimer.offset(), "interval timer"),
    ]
}

/// Sorted symbol view for rendering addresses as `name+offset`.
struct ImageSymbols {
    starts: Vec<(u32, String)>,
}

impl ImageSymbols {
    fn new(img: &Image) -> ImageSymbols {
        let mut starts: Vec<(u32, String)> =
            img.symbols().iter().map(|(n, a)| (*a, n.clone())).collect();
        starts.sort_unstable();
        ImageSymbols { starts }
    }

    fn name(&self, addr: u32) -> String {
        match self.starts.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => self.starts[i].1.clone(),
            Err(0) => format!("@{addr:#010x}"),
            Err(i) => {
                let (base, name) = &self.starts[i - 1];
                format!("{name}+{}", addr - base)
            }
        }
    }
}

/// How control leaves an instruction.
enum Flow {
    /// No successors (`rsb`, `ret`, `rei`, `halt`).
    Terminal,
    /// Unconditional transfer to a static target (`brb`, `brw`, static
    /// `jmp`); dynamic `jmp` has no followable successor.
    Goto(Option<u32>),
    /// Conditional branch / loop op: target plus fall-through.
    Cond(Option<u32>),
    /// Subroutine call: target plus fall-through (the callee returns).
    CallLike(Option<u32>),
    /// Everything else: fall-through.
    Fall,
}

/// Static target of a branch/call operand, if the addressing mode pins
/// one down. `next` is the address of the following instruction (branch
/// displacements are relative to it).
fn static_target(op: &Operand, next: u32) -> Option<u32> {
    match *op {
        Operand::BranchDisp(d) => Some(next.wrapping_add(d as u32)),
        Operand::Absolute(a) => Some(a),
        Operand::Relative(a) => Some(a),
        _ => None,
    }
}

fn flow_of(insn: &DecodedInsn, addr: u32) -> Flow {
    let next = addr + insn.len;
    let last = insn.operands.last();
    match insn.opcode {
        Opcode::Rsb | Opcode::Ret | Opcode::Rei | Opcode::Halt => Flow::Terminal,
        // `chmk #EXIT` terminates the process under the MOSS ABI; every
        // other syscall returns to the next instruction. Without this the
        // traversal would decode whatever data follows a program's final
        // exit as code.
        Opcode::Chmk
            if matches!(
                insn.operands.first(),
                Some(&Operand::Literal(n)) if n as u16 == atum_os::syscalls::EXIT
            ) =>
        {
            Flow::Terminal
        }
        Opcode::Brb | Opcode::Brw | Opcode::Jmp => {
            Flow::Goto(last.and_then(|o| static_target(o, next)))
        }
        Opcode::Bsbb | Opcode::Bsbw | Opcode::Jsb => {
            Flow::CallLike(last.and_then(|o| static_target(o, next)))
        }
        // `calls` reads the 16-bit register-save mask at the procedure
        // head; execution begins two bytes past the target.
        Opcode::Calls => Flow::CallLike(
            last.and_then(|o| static_target(o, next))
                .map(|t| t.wrapping_add(2)),
        ),
        Opcode::Sobgtr
        | Opcode::Sobgeq
        | Opcode::Aoblss
        | Opcode::Aobleq
        | Opcode::Blbs
        | Opcode::Blbc => Flow::Cond(last.and_then(|o| static_target(o, next))),
        op if op.is_conditional_branch() => Flow::Cond(last.and_then(|o| static_target(o, next))),
        _ => Flow::Fall,
    }
}

/// Lints one assembled image.
pub fn check_image(img: &Image, kind: ImageKind) -> Vec<Finding> {
    let syms = ImageSymbols::new(img);
    let base = img.base();
    let end = img.end();
    let flat = img.flatten();
    let mut fetch = |a: u32| {
        if a >= base && a < end {
            flat.get((a - base) as usize).copied()
        } else {
            None
        }
    };

    let mut out: Vec<Finding> = Vec::new();
    let mut emit = |syms: &ImageSymbols, addr: u32, severity: Severity, message: String| {
        out.push(Finding {
            pass: Pass::Svx,
            severity,
            symbol: syms.name(addr),
            addr,
            message,
        });
    };

    // Entry points: for the kernel, the boot symbol and every vector
    // routine; for user images, `start` (when defined) and the image
    // base, where execution begins.
    let mut work: Vec<u32> = Vec::new();
    match kind {
        ImageKind::Kernel => {
            for (name, &a) in img.symbols() {
                if name == "kstart" || name.starts_with("vec_") {
                    work.push(a);
                }
            }
            if work.is_empty() {
                work.push(base);
            }
        }
        ImageKind::User => {
            work.push(img.symbol("start").unwrap_or(base));
        }
    }

    // Reachability disassembly. Records every decoded instruction and
    // the static targets of each call style along the way.
    let mut insns: BTreeMap<u32, DecodedInsn> = BTreeMap::new();
    let mut calls_targets: HashMap<u32, u32> = HashMap::new(); // target → a call site
    let mut bsb_targets: HashMap<u32, u32> = HashMap::new();
    let mut scb_writes: HashMap<u32, (u32, u32)> = HashMap::new(); // vector → (handler, site)
    let mut seen: HashSet<u32> = HashSet::new();
    while let Some(addr) = work.pop() {
        if !seen.insert(addr) {
            continue;
        }
        if addr < base || addr >= end {
            emit(
                &syms,
                addr,
                Severity::Error,
                format!("reachable code address {addr:#010x} is outside the image"),
            );
            continue;
        }
        let insn = match DecodedInsn::decode(addr, &mut fetch) {
            Ok(i) => i,
            Err(e) => {
                emit(
                    &syms,
                    addr,
                    Severity::Error,
                    format!("reachable bytes do not decode: {e}"),
                );
                continue;
            }
        };

        if kind == ImageKind::User && insn.opcode.is_privileged() {
            emit(
                &syms,
                addr,
                Severity::Error,
                format!(
                    "privileged instruction {} in a user-mode image (faults at run time)",
                    insn.opcode.mnemonic()
                ),
            );
        }

        // SCB vector initialisation: movl #handler, @#SCB+offset.
        if kind == ImageKind::Kernel && insn.opcode == Opcode::Movl {
            if let [src, Operand::Absolute(dst)] = insn.operands[..] {
                let scb = SYSTEM_VA;
                if (scb..scb + 0x200).contains(&dst) {
                    if let Operand::Immediate(handler) = src {
                        scb_writes.insert(dst - scb, (handler, addr));
                        if handler < base || handler >= end {
                            emit(
                                &syms,
                                addr,
                                Severity::Error,
                                format!(
                                    "SCB vector {:#04x} is pointed at {handler:#010x}, outside the kernel image",
                                    dst - scb
                                ),
                            );
                        } else {
                            // The handler is code even if unnamed.
                            work.push(handler);
                        }
                    }
                }
            }
        }

        let next = addr + insn.len;
        match flow_of(&insn, addr) {
            Flow::Terminal => {}
            Flow::Goto(t) => {
                if let Some(t) = t {
                    work.push(t);
                }
            }
            Flow::Cond(t) => {
                if let Some(t) = t {
                    work.push(t);
                }
                work.push(next);
            }
            Flow::CallLike(t) => {
                if let Some(t) = t {
                    work.push(t);
                    match insn.opcode {
                        Opcode::Calls => {
                            calls_targets.entry(t).or_insert(addr);
                        }
                        _ => {
                            bsb_targets.entry(t).or_insert(addr);
                        }
                    }
                }
                work.push(next);
            }
            Flow::Fall => work.push(next),
        }
        insns.insert(addr, insn);
    }

    // Call/return discipline: walk each procedure body (never descending
    // into callees — their returns belong to them) and collect the
    // return opcodes it can reach.
    let returns_of = |entry: u32| -> HashSet<Opcode> {
        let mut rets = HashSet::new();
        let mut local_seen = HashSet::new();
        let mut stack = vec![entry];
        while let Some(a) = stack.pop() {
            if !local_seen.insert(a) {
                continue;
            }
            let Some(insn) = insns.get(&a) else { continue };
            let next = a + insn.len;
            match flow_of(insn, a) {
                Flow::Terminal => {
                    rets.insert(insn.opcode);
                }
                Flow::Goto(t) => {
                    if let Some(t) = t {
                        stack.push(t);
                    }
                }
                Flow::Cond(t) => {
                    if let Some(t) = t {
                        stack.push(t);
                    }
                    stack.push(next);
                }
                // A nested call returns here; its own returns are not ours.
                Flow::CallLike(_) => stack.push(next),
                Flow::Fall => stack.push(next),
            }
        }
        rets
    };

    for (&t, &site) in &calls_targets {
        if bsb_targets.contains_key(&t) {
            emit(
                &syms,
                t,
                Severity::Error,
                format!(
                    "procedure {} is entered both with calls and with bsb/jsb (incompatible frames)",
                    syms.name(t)
                ),
            );
        }
        if returns_of(t).contains(&Opcode::Rsb) {
            emit(
                &syms,
                site,
                Severity::Error,
                format!(
                    "calls to {} but the procedure returns with rsb (leaves the calls frame on the stack)",
                    syms.name(t)
                ),
            );
        }
    }
    for (&t, &site) in &bsb_targets {
        if returns_of(t).contains(&Opcode::Ret) {
            emit(
                &syms,
                site,
                Severity::Error,
                format!(
                    "bsb/jsb to {} but the subroutine returns with ret (pops a frame that was never pushed)",
                    syms.name(t)
                ),
            );
        }
    }

    if kind == ImageKind::Kernel {
        for (off, name) in required_vectors() {
            if !scb_writes.contains_key(&off) {
                emit(
                    &syms,
                    base,
                    Severity::Error,
                    format!(
                        "SCB vector {off:#04x} ({name}) is never initialised by reachable boot code"
                    ),
                );
            }
        }
    }

    out.sort_by_key(|f| f.addr);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_asm::assemble;
    use atum_os::kernel::{self, KernelOptions};

    fn kernel_image() -> Image {
        assemble(&kernel::source(&KernelOptions::default())).expect("kernel")
    }

    #[test]
    fn moss_kernel_is_clean() {
        let findings = check_image(&kernel_image(), ImageKind::Kernel);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn workloads_are_clean() {
        for w in atum_workloads::suite_standard() {
            let src = format!(".org {:#x}\n{}\n", atum_os::USER_BASE_VA, w.source);
            let img = assemble(&src).expect(&w.name);
            let findings = check_image(&img, ImageKind::User);
            assert!(findings.is_empty(), "{}: {findings:#?}", w.name);
        }
    }

    #[test]
    fn privileged_instruction_in_user_image_is_reported() {
        let img = assemble(".org 0x200\nstart:  mtpr r0, #18\n        halt\n").expect("asm");
        let findings = check_image(&img, ImageKind::User);
        assert!(
            findings.iter().any(|f| f.message.contains("mtpr")),
            "{findings:#?}"
        );
        assert!(
            findings.iter().any(|f| f.message.contains("halt")),
            "{findings:#?}"
        );
    }

    #[test]
    fn calls_into_rsb_routine_is_reported() {
        let src = ".org 0x200\n\
start:  calls   #0, sub\n\
        chmk    #0\n\
sub:    .word   0\n\
        rsb\n";
        let img = assemble(src).expect("asm");
        let findings = check_image(&img, ImageKind::User);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("returns with rsb")),
            "{findings:#?}"
        );
    }

    #[test]
    fn missing_scb_vector_is_reported() {
        // A "kernel" that sets up only one vector.
        let src = ".org 0x80002000\n\
kstart: movl    #vec_t, @#0x800000C0\n\
spin:   brb     spin\n\
vec_t:  rei\n";
        let img = assemble(src).expect("asm");
        let findings = check_image(&img, ImageKind::Kernel);
        assert!(
            findings.iter().any(|f| f.message.contains("machine check")),
            "{findings:#?}"
        );
    }
}
