//! The micro-CFG: successors, roots, reachability and symbolisation over
//! a [`ControlStore`].
//!
//! The sequencer's control flow is fully explicit in the micro-op
//! encoding, so the CFG needs no heuristics: every op either falls
//! through to the next word, transfers to an absolute address, reads a
//! patchable indirection (entry slot or dispatch table) whose current
//! contents the store itself holds, or terminates the micro-flow (the
//! engine re-enters through a table). That closed-world property is what
//! makes the whole verifier possible.

use atum_ucode::{ControlStore, Entry, MicroOp, SpecTable, Target};

/// Whether executing `op` can continue at the next control-store word.
///
/// [`MicroOp::Halt`] *does* fall through: the engine resumes at the next
/// word when the host restarts it (the ATUM buffer-full protocol relies
/// on exactly this). [`MicroOp::DecodeNext`] and [`MicroOp::Fault`] do
/// not — they re-enter through the `Fetch` / `ExcDispatch` entry slots.
pub fn falls_through(op: MicroOp) -> bool {
    !matches!(
        op,
        MicroOp::Jump(_)
            | MicroOp::Ret
            | MicroOp::DecodeNext
            | MicroOp::Fault(_)
            | MicroOp::DispatchOpcode
            | MicroOp::DispatchSpec(_)
    )
}

/// Resolves a micro-jump target against the store's entry table.
pub fn resolve(cs: &ControlStore, t: Target) -> u32 {
    match t {
        Target::Abs(a) => a,
        Target::Entry(e) => cs.entry(e),
    }
}

/// Successor micro-addresses of the word at `addr`.
///
/// Dispatch ops ([`MicroOp::DispatchOpcode`], [`MicroOp::DispatchSpec`])
/// report their full table as successors; [`MicroOp::DecodeNext`] and
/// [`MicroOp::Fault`] report the entry slot they re-enter through. A
/// [`MicroOp::Call`] reports both the callee and the return point.
pub fn successors(cs: &ControlStore, addr: u32) -> Vec<u32> {
    let op = cs.word(addr);
    let mut out = Vec::with_capacity(2);
    match op {
        MicroOp::Jump(t) => out.push(resolve(cs, t)),
        MicroOp::JumpIf { target, .. } => {
            out.push(resolve(cs, target));
            out.push(addr + 1);
        }
        MicroOp::Call(t) => {
            out.push(resolve(cs, t));
            out.push(addr + 1);
        }
        MicroOp::DispatchOpcode => {
            for b in 0..=255u8 {
                out.push(cs.opcode_target(b));
            }
        }
        MicroOp::DispatchSpec(table) => {
            for nibble in 0..16 {
                out.push(cs.spec_target(table, nibble));
            }
        }
        MicroOp::DecodeNext => out.push(cs.entry(Entry::Fetch)),
        MicroOp::Fault(_) => out.push(cs.entry(Entry::ExcDispatch)),
        MicroOp::Ret => {}
        _ => out.push(addr + 1),
    }
    out
}

/// The engine's entry points into the store: the entry table, the opcode
/// dispatch table, the four specifier dispatch tables and the reserved-
/// instruction fault routine.
pub fn roots(cs: &ControlStore) -> Vec<u32> {
    let mut out = Vec::new();
    for e in Entry::ALL {
        out.push(cs.entry(e));
    }
    for b in 0..=255u8 {
        out.push(cs.opcode_target(b));
    }
    for table in [
        SpecTable::Read,
        SpecTable::Write,
        SpecTable::Modify,
        SpecTable::Addr,
    ] {
        for nibble in 0..16 {
            out.push(cs.spec_target(table, nibble));
        }
    }
    out.push(cs.fault_addr());
    out.sort_unstable();
    out.dedup();
    out
}

/// Every micro-address reachable from the [`roots`], as a bitmap indexed
/// by address. Out-of-range targets are ignored here (the structural
/// pass reports them as findings).
pub fn reachable(cs: &ControlStore) -> Vec<bool> {
    let len = cs.len() as usize;
    let mut seen = vec![false; len];
    let mut stack: Vec<u32> = roots(cs)
        .into_iter()
        .filter(|&a| (a as usize) < len)
        .collect();
    while let Some(addr) = stack.pop() {
        if seen[addr as usize] {
            continue;
        }
        seen[addr as usize] = true;
        for s in successors(cs, addr) {
            if (s as usize) < len && !seen[s as usize] {
                stack.push(s);
            }
        }
    }
    seen
}

/// Whether executing `op` can divert control into the exception
/// micro-flow: the virtual transfers fault on a translation miss or
/// protection violation, and [`MicroOp::Fault`] *is* the diversion. The
/// physical transfers never fault (they bypass translation), which is
/// exactly why the ATUM patches are restricted to them.
///
/// This is the shared fault-permissible-point predicate used by both the
/// `cost` pass (fault cycles escape the static added-cycle bound) and
/// the `atomicity` pass (a fault mid-hook re-enters the trace hooks).
pub fn can_fault(op: MicroOp) -> bool {
    matches!(
        op,
        MicroOp::Read { .. } | MicroOp::Write { .. } | MicroOp::Fault(_)
    )
}

/// Whether executing `op` opens a preemption window: [`MicroOp::Halt`]
/// hands the machine to the host (the ATUM drain runs there), and
/// [`MicroOp::DecodeNext`] is where pending interrupts are honoured.
/// Neither diverts into the exception flow by itself, but anything live
/// across one is exposed to the drain or the interrupt micro-flow.
pub fn preempt_window(op: MicroOp) -> bool {
    matches!(op, MicroOp::Halt | MicroOp::DecodeNext)
}

/// Every reachable micro-address whose word is a fault-permissible
/// point ([`can_fault`]), sorted. A fault-exit observed from any other
/// address is impossible: the closed-world CFG has no other diversion
/// sites. (Preemption windows — [`preempt_window`] — are deliberately
/// not included: a `Halt` hands control to the host without entering
/// the exception flow, and the atomicity pass treats the two cases
/// differently.)
pub fn fault_points(cs: &ControlStore) -> Vec<u32> {
    let seen = reachable(cs);
    (0..cs.len())
        .filter(|&a| seen[a as usize] && can_fault(cs.word(a)))
        .collect()
}

/// The closure of a routine inside a region: every address in `[lo, hi)`
/// reachable from `start` without leaving the region (edges out of the
/// region — e.g. a patch rejoining the stock flow — are not followed).
/// Sorted and deduplicated.
pub fn region_closure(cs: &ControlStore, start: u32, lo: u32, hi: u32) -> Vec<u32> {
    let mut seen = Vec::new();
    let mut stack = vec![start];
    while let Some(addr) = stack.pop() {
        if addr < lo || addr >= hi || seen.contains(&addr) {
            continue;
        }
        seen.push(addr);
        stack.extend(successors(cs, addr));
    }
    seen.sort_unstable();
    seen
}

/// A sorted `(address, name)` view of the symbol table, for resolving
/// addresses back to `symbol+offset` form.
pub struct SymbolMap {
    starts: Vec<(u32, String)>,
}

impl SymbolMap {
    /// Builds the map from a store's symbol table.
    pub fn new(cs: &ControlStore) -> SymbolMap {
        let mut starts: Vec<(u32, String)> =
            cs.symbols().iter().map(|(n, a)| (*a, n.clone())).collect();
        starts.sort_unstable();
        SymbolMap { starts }
    }

    /// Renders `addr` as `name` / `name+offset`, or `@addr` when no
    /// symbol precedes it.
    pub fn name(&self, addr: u32) -> String {
        match self.starts.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => self.starts[i].1.clone(),
            Err(0) => format!("@{addr:#06x}"),
            Err(i) => {
                let (base, name) = &self.starts[i - 1];
                format!("{name}+{}", addr - base)
            }
        }
    }

    /// The symbol starting exactly at `addr`, if any.
    pub fn at(&self, addr: u32) -> Option<&str> {
        self.starts
            .binary_search_by_key(&addr, |&(a, _)| a)
            .ok()
            .map(|i| self.starts[i].1.as_str())
    }

    /// End of the routine containing `addr`: the next symbol's start, or
    /// `len` if none follows.
    pub fn routine_end(&self, addr: u32, len: u32) -> u32 {
        self.starts
            .iter()
            .map(|&(a, _)| a)
            .find(|&a| a > addr)
            .unwrap_or(len)
    }

    /// Start of the routine containing `addr` (the nearest symbol at or
    /// before it), if any symbol precedes it.
    pub fn routine_start(&self, addr: u32) -> Option<u32> {
        match self.starts.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => Some(self.starts[i].0),
            Err(0) => None,
            Err(i) => Some(self.starts[i - 1].0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_ucode::stock;

    #[test]
    fn stock_roots_are_in_range() {
        let cs = stock::build();
        for r in roots(&cs) {
            assert!(r < cs.len());
        }
    }

    #[test]
    fn halt_falls_through_but_jump_does_not() {
        assert!(falls_through(MicroOp::Halt));
        assert!(!falls_through(MicroOp::Jump(Target::Abs(0))));
        assert!(!falls_through(MicroOp::Ret));
        assert!(!falls_through(MicroOp::DecodeNext));
    }

    #[test]
    fn stock_store_is_fully_reachable() {
        let cs = stock::build();
        let seen = reachable(&cs);
        let dead = seen.iter().filter(|&&s| !s).count();
        assert_eq!(dead, 0, "{dead} unreachable stock words");
    }

    #[test]
    fn symbol_map_round_trips() {
        let cs = stock::build();
        let map = SymbolMap::new(&cs);
        let fetch = cs.symbol("fetch.insn").unwrap();
        assert_eq!(map.name(fetch), "fetch.insn");
        assert_eq!(map.name(fetch + 1), "fetch.insn+1");
        assert_eq!(map.at(fetch), Some("fetch.insn"));
    }
}
