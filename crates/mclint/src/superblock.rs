//! Superblock formation equivalence: statically verify the traced-
//! superblock tier's blocks against the microcode they claim to stitch.
//!
//! The capture path's hottest configuration dispatches whole
//! [`Superblock`]s, so a formation bug — a folded jump charging the
//! wrong cycles, a call/ret matched across the wrong frame, a pure-op
//! filter admitting an op with engine side effects — would corrupt
//! cycle counts or architectural state while every per-op proof stays
//! green. This pass closes that gap the way [`crate::lowering`] does
//! for the predecoded image: for every control-store address it
//! independently re-derives the block that must form there — walking
//! the *source micro-words* through its own copy of the stitching
//! rules, with each word lowered by the already-proven independent
//! derivation in [`crate::lowering`] — and diffs the machine's formed
//! block element by element (address, cumulative cycle offset, op),
//! plus the exit address and the static total.
//!
//! [`check`] proves the formation function itself, exhaustively over
//! every head the cache could ever probe. [`check_blocks`] diffs an
//! *existing* block set (say, a machine's live cache after a run)
//! against a store, catching stale or tampered blocks — the runtime
//! side the seeded-bug suite exercises.
//!
//! What this pass cannot prove is that the block *executor* replays the
//! per-op loop faithfully (guard exits, PTE-walk cycle credit, fault
//! unwinding); that is pinned dynamically by the three-way lockstep
//! suite in `crates/bench/tests/fast_equiv.rs`.

use crate::cfg::SymbolMap;
use crate::{Finding, Pass, Severity};
use atum_arch::PrivReg;
use atum_machine::fast::{DecOp, FastImage};
use atum_machine::superblock::MAX_BLOCK_OPS;
use atum_machine::{SbOp, Superblock};
use atum_ucode::{cost, ControlStore, Entry};

/// Proves the machine's formation function against this pass's
/// independent derivation, for every possible head address in the
/// store. The form `lint::run` uses.
pub fn check(cs: &ControlStore) -> Vec<Finding> {
    let img = FastImage::build(cs);
    let fetch = cs.entry(Entry::Fetch);
    let symbols = SymbolMap::new(cs);
    let mut out = Vec::new();
    for head in 0..cs.len() {
        let got = Superblock::form(&img, fetch, head);
        let want = derive(cs, fetch, head);
        match (&got, &want) {
            (None, None) => {}
            (Some(sb), Some(want)) => diff_block(sb, want, &symbols, &mut out),
            (Some(_), None) => out.push(Finding {
                pass: Pass::Superblock,
                severity: Severity::Error,
                symbol: symbols.name(head),
                addr: head,
                message: "a block forms at this head, but independent derivation \
                          says the head op ends a block"
                    .into(),
            }),
            (None, Some(_)) => out.push(Finding {
                pass: Pass::Superblock,
                severity: Severity::Error,
                symbol: symbols.name(head),
                addr: head,
                message: "no block forms at this head, but independent derivation \
                          stitches one"
                    .into(),
            }),
        }
    }
    out.sort_by_key(|f| f.addr);
    out
}

/// Diffs an existing block set against a store: the runtime form, for a
/// machine's live cache (or a deliberately corrupted copy — the
/// seeded-bug suite). `version` is the store version the blocks claim
/// to be formed against; a mismatch is a single stale-cache finding,
/// since every block is then suspect.
pub fn check_blocks(cs: &ControlStore, version: u64, blocks: &[Superblock]) -> Vec<Finding> {
    let mut out = Vec::new();
    if version != cs.version() {
        out.push(Finding {
            pass: Pass::Superblock,
            severity: Severity::Error,
            symbol: "superblock-cache".into(),
            addr: 0,
            message: format!(
                "cache version {} does not match store version {}: the cache \
                 is stale and every cached block is suspect",
                version,
                cs.version()
            ),
        });
        return out;
    }
    let fetch = cs.entry(Entry::Fetch);
    let symbols = SymbolMap::new(cs);
    for sb in blocks {
        match derive(cs, fetch, sb.head) {
            Some(want) => diff_block(sb, &want, &symbols, &mut out),
            None => out.push(Finding {
                pass: Pass::Superblock,
                severity: Severity::Error,
                symbol: symbols.name(sb.head),
                addr: sb.head,
                message: "a block is cached at this head, but independent \
                          derivation says the head op ends a block"
                    .into(),
            }),
        }
    }
    out.sort_by_key(|f| f.addr);
    out
}

/// The independently derived shape a block must have.
struct Derived {
    ops: Vec<SbOp>,
    exit_upc: u32,
    total_cost: u32,
}

/// Element-by-element diff of a formed (or cached) block against the
/// independent derivation.
fn diff_block(got: &Superblock, want: &Derived, symbols: &SymbolMap, out: &mut Vec<Finding>) {
    for (i, (g, w)) in got.ops.iter().zip(&want.ops).enumerate() {
        if g != w {
            out.push(Finding {
                pass: Pass::Superblock,
                severity: Severity::Error,
                symbol: symbols.name(w.upc),
                addr: w.upc,
                message: format!(
                    "block @{:#06x} element {i} mismatch: cached \
                     (upc {:#06x}, cyc {}, {:?}), derivation says \
                     (upc {:#06x}, cyc {}, {:?})",
                    got.head, g.upc, g.cyc, g.op, w.upc, w.cyc, w.op
                ),
            });
            // The first divergent element poisons everything after it;
            // one finding per block keeps the report readable.
            return;
        }
    }
    if got.ops.len() != want.ops.len() {
        out.push(Finding {
            pass: Pass::Superblock,
            severity: Severity::Error,
            symbol: symbols.name(got.head),
            addr: got.head,
            message: format!(
                "block @{:#06x} has {} elements, derivation says {}",
                got.head,
                got.ops.len(),
                want.ops.len()
            ),
        });
        return;
    }
    if got.exit_upc != want.exit_upc {
        out.push(Finding {
            pass: Pass::Superblock,
            severity: Severity::Error,
            symbol: symbols.name(got.head),
            addr: got.head,
            message: format!(
                "block @{:#06x} exits to {:#06x}, derivation says {:#06x}",
                got.head, got.exit_upc, want.exit_upc
            ),
        });
    }
    if got.total_cost != want.total_cost {
        out.push(Finding {
            pass: Pass::Superblock,
            severity: Severity::Error,
            symbol: symbols.name(got.head),
            addr: got.head,
            message: format!(
                "block @{:#06x} claims {} static cycles, derivation says {}",
                got.head, got.total_cost, want.total_cost
            ),
        });
    }
}

/// Restatement of the fast engine's plain (side-effect-free) constant
/// privileged-register write set — deliberately not imported from
/// `atum-machine`, so a machine-side drift in the pure-op filter shows
/// up as a diff.
fn plain_prv(reg: PrivReg) -> bool {
    matches!(
        reg,
        PrivReg::Ksp
            | PrivReg::Usp
            | PrivReg::Pcbb
            | PrivReg::Scbb
            | PrivReg::Trctl
            | PrivReg::Trbase
            | PrivReg::Trptr
            | PrivReg::Trlim
    )
}

/// Restatement of the pure-op contract: no exits, no faults, no
/// micro-PC effects, cost exactly [`cost::BASE`].
fn pure_op(op: &DecOp) -> bool {
    match op {
        DecOp::MovSS { .. }
        | DecOp::MovIS { .. }
        | DecOp::MovGIS { .. }
        | DecOp::MovSGI { .. }
        | DecOp::MovSMF { .. }
        | DecOp::MovSG { .. }
        | DecOp::AluSS { .. }
        | DecOp::AluIS { .. }
        | DecOp::AluSI { .. }
        | DecOp::Mov { .. }
        | DecOp::MovID { .. }
        | DecOp::Alu { .. }
        | DecOp::AluID { .. }
        | DecOp::AluDI { .. }
        | DecOp::AluConst { .. }
        | DecOp::SetSize(_)
        | DecOp::AdvancePc
        | DecOp::ReadPrK { .. } => true,
        DecOp::WritePrK { reg, .. } | DecOp::WritePrKI { reg, .. } => plain_prv(*reg),
        _ => false,
    }
}

/// Independently re-derives the block headed at `head` from the source
/// micro-words: each word is lowered by [`crate::lowering`]'s
/// from-scratch derivation (never the sealed image), then stitched by
/// this pass's own copy of the formation rules — fold unconditional
/// jumps into the cycle offsets, follow matched call/ret pairs and
/// instruction boundaries, stop at dispatches, dynamic ops and
/// revisits.
fn derive(cs: &ControlStore, fetch_entry: u32, head: u32) -> Option<Derived> {
    if head >= cs.len() {
        return None;
    }
    let mut ops: Vec<SbOp> = Vec::new();
    let mut visited = std::collections::HashSet::new();
    let mut callstack: Vec<u32> = Vec::new();
    let mut cyc: u32 = 0;
    let mut walked = 0usize;
    let mut upc = head;
    loop {
        if walked >= MAX_BLOCK_OPS || !visited.insert(upc) || upc >= cs.len() {
            break;
        }
        let op = crate::lowering::lower(cs.word(upc), cs);
        walked += 1;
        let base = cost::BASE as u32;
        let mem = (cost::BASE + cost::MEM_EXTRA) as u32;
        macro_rules! push_op {
            ($charge:expr) => {{
                cyc += $charge;
                ops.push(SbOp { upc, cyc, op });
            }};
        }
        match op {
            _ if pure_op(&op) => {
                push_op!(base);
                upc += 1;
            }
            DecOp::Jump(t) => {
                cyc += base;
                upc = t;
            }
            DecOp::JumpUZero(_)
            | DecOp::JumpUNotZero(_)
            | DecOp::JumpRegNumIsPc(_)
            | DecOp::JumpIf { .. } => {
                push_op!(base);
                upc += 1;
            }
            DecOp::Read { .. } | DecOp::Write { .. } | DecOp::PhysRead | DecOp::PhysWrite => {
                push_op!(mem);
                upc += 1;
            }
            DecOp::Call(t) => {
                push_op!(base);
                callstack.push(upc + 1);
                upc = t;
            }
            DecOp::Ret => match callstack.pop() {
                Some(ret) => {
                    push_op!(base);
                    upc = ret;
                }
                None => break,
            },
            DecOp::DecodeNext => {
                push_op!(base);
                upc = fetch_entry;
            }
            _ => break,
        }
    }
    if cyc == 0 {
        return None;
    }
    Some(Derived {
        ops,
        exit_upc: upc,
        total_cost: cyc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atum_ucode::stock;

    #[test]
    fn stock_store_forms_equivalently_everywhere() {
        let cs = stock::build();
        assert_eq!(check(&cs), Vec::new());
    }

    #[test]
    fn live_blocks_from_formation_check_clean() {
        let cs = stock::build();
        let img = FastImage::build(&cs);
        let fetch = cs.entry(Entry::Fetch);
        let blocks: Vec<Superblock> = (0..cs.len())
            .filter_map(|h| Superblock::form(&img, fetch, h))
            .collect();
        assert!(!blocks.is_empty());
        assert_eq!(check_blocks(&cs, cs.version(), &blocks), Vec::new());
    }

    #[test]
    fn stale_version_is_one_finding() {
        let cs = stock::build();
        let findings = check_blocks(&cs, cs.version() + 1, &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("stale"));
    }
}
