//! Privileged (internal processor) registers, accessed with `mtpr`/`mfpr`.
//!
//! The set mirrors the VAX's where the simulator needs one, plus four
//! registers the ATUM reproduction adds for trace control (`Tr*`). On the
//! real 8200 those lived in microcode scratch and were poked from the
//! console; modelling them as privileged registers keeps the host/harness
//! interface honest (the patch microcode reads them from micro-scratch, and
//! the host writes them through the machine's privileged-register file, not
//! through some Rust back door).

use std::fmt;

macro_rules! prv_regs {
    ($( $(#[doc = $doc:literal])* $name:ident = $num:literal, $mnem:literal; )+) => {
        /// A privileged register number.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u32)]
        pub enum PrivReg {
            $( $(#[doc = $doc])* $name = $num, )+
        }

        impl PrivReg {
            /// All defined privileged registers.
            pub const ALL: &'static [PrivReg] = &[ $(PrivReg::$name,)+ ];

            /// Decodes a register number (as supplied to `mtpr`/`mfpr`).
            pub fn from_number(num: u32) -> Option<PrivReg> {
                match num {
                    $( $num => Some(PrivReg::$name), )+
                    _ => None,
                }
            }

            /// The register's number.
            pub fn number(self) -> u32 {
                self as u32
            }

            /// The conventional mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self { $( PrivReg::$name => $mnem, )+ }
            }

            /// Looks a register up by mnemonic (lower-case).
            pub fn from_mnemonic(m: &str) -> Option<PrivReg> {
                match m {
                    $( $mnem => Some(PrivReg::$name), )+
                    _ => None,
                }
            }
        }
    };
}

prv_regs! {
    /// Kernel stack pointer (banked; live SP swaps with this on mode change).
    Ksp = 0, "ksp";
    /// User stack pointer (banked).
    Usp = 3, "usp";
    /// P0 region page-table physical base address.
    P0br = 8, "p0br";
    /// P0 region page-table length, in entries.
    P0lr = 9, "p0lr";
    /// P1 region page-table physical base address.
    P1br = 10, "p1br";
    /// P1 region page-table length, in entries.
    P1lr = 11, "p1lr";
    /// System region page-table physical base address.
    Sbr = 12, "sbr";
    /// System region page-table length, in entries.
    Slr = 13, "slr";
    /// Process control block physical base address.
    Pcbb = 16, "pcbb";
    /// System control block (exception vector page) physical base address.
    Scbb = 17, "scbb";
    /// Interrupt priority level (writing alters the PSL IPL field).
    Ipl = 18, "ipl";
    /// Software interrupt request: writing level *n* requests soft IRQ *n*.
    Sirr = 19, "sirr";
    /// Software interrupt summary (pending levels bitmask; read-only).
    Sisr = 20, "sisr";
    /// Interval clock control/status: bit 0 run, bit 6 interrupt enable,
    /// bit 7 interrupt pending (write 1 to clear).
    Iccs = 24, "iccs";
    /// Interval clock reload value, in microcycles between ticks.
    Icr = 25, "icr";
    /// Console transmit data buffer: writing sends a byte to the console.
    Txdb = 32, "txdb";
    /// Console transmit control/status (bit 7: ready; always ready here).
    Txcs = 33, "txcs";
    /// Console receive data buffer.
    Rxdb = 34, "rxdb";
    /// Console receive control/status (bit 7: byte available).
    Rxcs = 35, "rxcs";
    /// ATUM trace control: bit 0 enables capture; bits 8..16 hold the
    /// current process id stamped into trace records.
    Trctl = 48, "trctl";
    /// ATUM trace buffer physical base address.
    Trbase = 49, "trbase";
    /// ATUM trace write pointer (physical; advanced by the patch microcode).
    Trptr = 50, "trptr";
    /// ATUM trace buffer physical limit (exclusive); reaching it raises the
    /// buffer-full condition.
    Trlim = 51, "trlim";
    /// Memory-management enable: 0 at boot (VA = PA), 1 once the kernel has
    /// built its page tables.
    Mapen = 56, "mapen";
    /// Translation-buffer invalidate all (write-only strobe).
    Tbia = 57, "tbia";
    /// Translation-buffer invalidate single (write the VA; write-only).
    Tbis = 58, "tbis";
}

impl fmt::Display for PrivReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_round_trip() {
        for &r in PrivReg::ALL {
            assert_eq!(PrivReg::from_number(r.number()), Some(r));
        }
    }

    #[test]
    fn mnemonic_round_trip() {
        for &r in PrivReg::ALL {
            assert_eq!(PrivReg::from_mnemonic(r.mnemonic()), Some(r));
        }
    }

    #[test]
    fn unknown_numbers_are_none() {
        assert_eq!(PrivReg::from_number(1), None);
        assert_eq!(PrivReg::from_number(999), None);
    }

    #[test]
    fn numbers_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &r in PrivReg::ALL {
            assert!(seen.insert(r.number()));
        }
    }

    #[test]
    fn atum_registers_are_contiguous() {
        assert_eq!(PrivReg::Trctl.number() + 1, PrivReg::Trbase.number());
        assert_eq!(PrivReg::Trbase.number() + 1, PrivReg::Trptr.number());
        assert_eq!(PrivReg::Trptr.number() + 1, PrivReg::Trlim.number());
    }
}
