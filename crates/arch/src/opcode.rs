//! The SVX opcode map.
//!
//! Every instruction is a single opcode byte followed by the operands
//! described by [`Opcode::operands`]. The mnemonics and operand conventions
//! are the VAX's; the byte values are SVX's own (documented deviation — the
//! encoding is regenerated from this table everywhere, so nothing else
//! depends on the particular numbers).

use crate::mode::{OperandSpec, AB, AL, BB, BW, ML, RB, RL, RW, WB, WL, WW};
use std::fmt;

macro_rules! opcodes {
    ($( $(#[doc = $doc:literal])* $name:ident = $byte:literal, $mnem:literal, [$($ops:expr),*]; )+) => {
        /// An SVX instruction opcode.
        ///
        /// See the [module docs](self) for the encoding scheme.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u8)]
        pub enum Opcode {
            $( $(#[doc = $doc])* $name = $byte, )+
        }

        impl Opcode {
            /// All defined opcodes, in encoding order.
            pub const ALL: &'static [Opcode] = &[ $(Opcode::$name,)+ ];

            /// Decodes an opcode byte.
            ///
            /// Returns `None` for unassigned encodings (which the machine
            /// turns into a reserved-instruction fault).
            pub fn from_byte(byte: u8) -> Option<Opcode> {
                match byte {
                    $( $byte => Some(Opcode::$name), )+
                    _ => None,
                }
            }

            /// The opcode's encoding byte.
            pub fn to_byte(self) -> u8 {
                self as u8
            }

            /// The assembler mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $( Opcode::$name => $mnem, )+
                }
            }

            /// Looks an opcode up by mnemonic (lower-case).
            pub fn from_mnemonic(mnemonic: &str) -> Option<Opcode> {
                match mnemonic {
                    $( $mnem => Some(Opcode::$name), )+
                    _ => None,
                }
            }

            /// The operand descriptors, in instruction-stream order.
            pub fn operands(self) -> &'static [OperandSpec] {
                match self {
                    $( Opcode::$name => &[$($ops),*], )+
                }
            }
        }
    };
}

opcodes! {
    // ── System control ────────────────────────────────────────────────
    /// Halt the processor (kernel only).
    Halt   = 0x00, "halt",   [];
    /// No operation.
    Nop    = 0x01, "nop",    [];
    /// Return from exception or interrupt: pop PC then PSL.
    Rei    = 0x02, "rei",    [];
    /// Breakpoint trap.
    Bpt    = 0x03, "bpt",    [];
    /// Change mode to kernel: trap through the CHMK vector with a code.
    Chmk   = 0x04, "chmk",   [RW];
    /// Save process context into the PCB addressed by the PCBB register.
    Svpctx = 0x05, "svpctx", [];
    /// Load process context from the PCB addressed by the PCBB register.
    Ldpctx = 0x06, "ldpctx", [];
    /// Move to privileged register (kernel only).
    Mtpr   = 0x07, "mtpr",   [RL, RL];
    /// Move from privileged register (kernel only).
    Mfpr   = 0x08, "mfpr",   [RL, WL];

    // ── Moves and conversions ─────────────────────────────────────────
    /// Move byte.
    Movb   = 0x10, "movb",   [RB, WB];
    /// Move word.
    Movw   = 0x11, "movw",   [RW, WW];
    /// Move longword.
    Movl   = 0x12, "movl",   [RL, WL];
    /// Move zero-extended byte to longword.
    Movzbl = 0x13, "movzbl", [RB, WL];
    /// Move zero-extended word to longword.
    Movzwl = 0x14, "movzwl", [RW, WL];
    /// Move complemented longword.
    Mcoml  = 0x15, "mcoml",  [RL, WL];
    /// Move negated longword.
    Mnegl  = 0x16, "mnegl",  [RL, WL];
    /// Move address of longword operand.
    Moval  = 0x17, "moval",  [AL, WL];
    /// Move address of byte operand.
    Movab  = 0x18, "movab",  [AB, WL];
    /// Push longword onto the stack.
    Pushl  = 0x19, "pushl",  [RL];
    /// Push address of longword operand onto the stack.
    Pushal = 0x1A, "pushal", [AL];
    /// Clear byte.
    Clrb   = 0x1B, "clrb",   [WB];
    /// Clear word.
    Clrw   = 0x1C, "clrw",   [WW];
    /// Clear longword.
    Clrl   = 0x1D, "clrl",   [WL];
    /// Convert (sign-extend) byte to longword.
    Cvtbl  = 0x1E, "cvtbl",  [RB, WL];
    /// Convert (sign-extend) word to longword.
    Cvtwl  = 0x1F, "cvtwl",  [RW, WL];

    // ── Integer arithmetic and logic ──────────────────────────────────
    /// Add longword, two-operand.
    Addl2  = 0x20, "addl2",  [RL, ML];
    /// Add longword, three-operand.
    Addl3  = 0x21, "addl3",  [RL, RL, WL];
    /// Subtract longword, two-operand (`dst -= src`).
    Subl2  = 0x22, "subl2",  [RL, ML];
    /// Subtract longword, three-operand (`dst = b - a`).
    Subl3  = 0x23, "subl3",  [RL, RL, WL];
    /// Multiply longword, two-operand.
    Mull2  = 0x24, "mull2",  [RL, ML];
    /// Multiply longword, three-operand.
    Mull3  = 0x25, "mull3",  [RL, RL, WL];
    /// Divide longword, two-operand (`dst /= src`).
    Divl2  = 0x26, "divl2",  [RL, ML];
    /// Divide longword, three-operand (`dst = b / a`).
    Divl3  = 0x27, "divl3",  [RL, RL, WL];
    /// Increment longword.
    Incl   = 0x28, "incl",   [ML];
    /// Decrement longword.
    Decl   = 0x29, "decl",   [ML];
    /// Arithmetic shift longword: positive count shifts left.
    Ashl   = 0x2A, "ashl",   [RB, RL, WL];
    /// Exclusive-or longword, two-operand.
    Xorl2  = 0x2B, "xorl2",  [RL, ML];
    /// Exclusive-or longword, three-operand.
    Xorl3  = 0x2C, "xorl3",  [RL, RL, WL];
    /// Bit set (inclusive or) longword, two-operand.
    Bisl2  = 0x2D, "bisl2",  [RL, ML];
    /// Bit set (inclusive or) longword, three-operand.
    Bisl3  = 0x2E, "bisl3",  [RL, RL, WL];
    /// Bit clear (and-not) longword, two-operand.
    Bicl2  = 0x2F, "bicl2",  [RL, ML];
    /// Bit clear (and-not) longword, three-operand.
    Bicl3  = 0x30, "bicl3",  [RL, RL, WL];
    /// Convert (truncate) longword to byte.
    Cvtlb  = 0x31, "cvtlb",  [RL, WB];
    /// Convert (truncate) longword to word.
    Cvtlw  = 0x32, "cvtlw",  [RL, WW];

    // ── Compare and test ──────────────────────────────────────────────
    /// Compare byte.
    Cmpb   = 0x34, "cmpb",   [RB, RB];
    /// Compare word.
    Cmpw   = 0x35, "cmpw",   [RW, RW];
    /// Compare longword.
    Cmpl   = 0x36, "cmpl",   [RL, RL];
    /// Test byte.
    Tstb   = 0x37, "tstb",   [RB];
    /// Test word.
    Tstw   = 0x38, "tstw",   [RW];
    /// Test longword.
    Tstl   = 0x39, "tstl",   [RL];
    /// Bit test longword (AND, set condition codes, discard result).
    Bitl   = 0x3A, "bitl",   [RL, RL];

    // ── Branches ──────────────────────────────────────────────────────
    /// Branch with byte displacement.
    Brb    = 0x40, "brb",    [BB];
    /// Branch with word displacement.
    Brw    = 0x41, "brw",    [BW];
    /// Branch if not equal (Z clear).
    Bneq   = 0x42, "bneq",   [BB];
    /// Branch if equal (Z set).
    Beql   = 0x43, "beql",   [BB];
    /// Branch if greater (signed).
    Bgtr   = 0x44, "bgtr",   [BB];
    /// Branch if less than or equal (signed).
    Bleq   = 0x45, "bleq",   [BB];
    /// Branch if greater than or equal (signed, N clear).
    Bgeq   = 0x46, "bgeq",   [BB];
    /// Branch if less than (signed, N set).
    Blss   = 0x47, "blss",   [BB];
    /// Branch if greater (unsigned).
    Bgtru  = 0x48, "bgtru",  [BB];
    /// Branch if less than or equal (unsigned).
    Blequ  = 0x49, "blequ",  [BB];
    /// Branch if overflow clear.
    Bvc    = 0x4A, "bvc",    [BB];
    /// Branch if overflow set.
    Bvs    = 0x4B, "bvs",    [BB];
    /// Branch if carry clear (unsigned greater or equal).
    Bcc    = 0x4C, "bcc",    [BB];
    /// Branch if carry set (unsigned less).
    Bcs    = 0x4D, "bcs",    [BB];

    // ── Subroutines and loops ─────────────────────────────────────────
    /// Branch to subroutine, byte displacement (pushes return PC).
    Bsbb   = 0x50, "bsbb",   [BB];
    /// Branch to subroutine, word displacement.
    Bsbw   = 0x51, "bsbw",   [BW];
    /// Return from subroutine (pops PC).
    Rsb    = 0x52, "rsb",    [];
    /// Jump to the operand's address.
    Jmp    = 0x53, "jmp",    [AB];
    /// Jump to subroutine at the operand's address (pushes return PC).
    Jsb    = 0x54, "jsb",    [AB];
    /// Subtract one and branch if greater than zero.
    Sobgtr = 0x55, "sobgtr", [ML, BB];
    /// Subtract one and branch if greater than or equal to zero.
    Sobgeq = 0x56, "sobgeq", [ML, BB];
    /// Add one and branch if less than limit.
    Aoblss = 0x57, "aoblss", [RL, ML, BB];
    /// Add one and branch if less than or equal to limit.
    Aobleq = 0x58, "aobleq", [RL, ML, BB];

    // ── Procedure calls ───────────────────────────────────────────────
    /// Call procedure with stack-argument list and register-save mask.
    Calls  = 0x5C, "calls",  [RL, AB];
    /// Return from a `calls` procedure.
    Ret    = 0x5D, "ret",    [];

    // ── String, block and queue (microcoded showcase) ─────────────────
    /// Move character string: length, source address, destination address.
    /// Leaves R0 = 0, R1 = end of source, R3 = end of destination.
    Movc3  = 0x60, "movc3",  [RL, AB, AB];
    /// Compare character strings; condition codes reflect the result.
    Cmpc3  = 0x61, "cmpc3",  [RL, AB, AB];
    /// Locate character: find byte in string; R0 = bytes remaining,
    /// R1 = address of match (or end).
    Locc   = 0x62, "locc",   [RB, RL, AB];
    /// Insert entry into a doubly-linked queue after the predecessor.
    Insque = 0x64, "insque", [AB, AB];
    /// Remove entry from a doubly-linked queue; its address goes to the
    /// destination. Sets V if the queue was empty.
    Remque = 0x65, "remque", [AB, WL];

    // ── Bit fields ────────────────────────────────────────────────────
    /// Extract zero-extended bit field: position, size, base address, dst.
    Extzv  = 0x68, "extzv",  [RL, RB, AB, WL];
    /// Insert bit field: source, position, size, base address.
    Insv   = 0x69, "insv",   [RL, RL, RB, AB];

    // ── Register-mask push/pop ────────────────────────────────────────
    /// Push the registers named by the mask (bit *n* = `Rn`, R0–R13).
    Pushr  = 0x6C, "pushr",  [RW];
    /// Pop the registers named by the mask.
    Popr   = 0x6D, "popr",   [RW];

    // ── Bit branches (low-bit tests used by kernels) ──────────────────
    /// Branch on low bit set.
    Blbs   = 0x70, "blbs",   [RL, BB];
    /// Branch on low bit clear.
    Blbc   = 0x71, "blbc",   [RL, BB];
}

impl Opcode {
    /// Whether this opcode may only execute in kernel mode.
    pub fn is_privileged(self) -> bool {
        matches!(
            self,
            Opcode::Halt
                | Opcode::Rei
                | Opcode::Svpctx
                | Opcode::Ldpctx
                | Opcode::Mtpr
                | Opcode::Mfpr
        )
    }

    /// Whether this opcode is a conditional branch (excluding `brb`/`brw`).
    pub fn is_conditional_branch(self) -> bool {
        matches!(
            self,
            Opcode::Bneq
                | Opcode::Beql
                | Opcode::Bgtr
                | Opcode::Bleq
                | Opcode::Bgeq
                | Opcode::Blss
                | Opcode::Bgtru
                | Opcode::Blequ
                | Opcode::Bvc
                | Opcode::Bvs
                | Opcode::Bcc
                | Opcode::Bcs
        )
    }

    /// The branch with the opposite condition, for assembler branch
    /// relaxation (`bneq far` becomes `beql .+5; brw far`).
    pub fn inverted_branch(self) -> Option<Opcode> {
        Some(match self {
            Opcode::Bneq => Opcode::Beql,
            Opcode::Beql => Opcode::Bneq,
            Opcode::Bgtr => Opcode::Bleq,
            Opcode::Bleq => Opcode::Bgtr,
            Opcode::Bgeq => Opcode::Blss,
            Opcode::Blss => Opcode::Bgeq,
            Opcode::Bgtru => Opcode::Blequ,
            Opcode::Blequ => Opcode::Bgtru,
            Opcode::Bvc => Opcode::Bvs,
            Opcode::Bvs => Opcode::Bvc,
            Opcode::Bcc => Opcode::Bcs,
            Opcode::Bcs => Opcode::Bcc,
            _ => return None,
        })
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::Access;

    #[test]
    fn byte_round_trip_for_all() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_byte(op.to_byte()), Some(op), "{op}");
        }
    }

    #[test]
    fn mnemonic_round_trip_for_all() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op), "{op}");
        }
    }

    #[test]
    fn unknown_encodings_decode_to_none() {
        let assigned: std::collections::HashSet<u8> =
            Opcode::ALL.iter().map(|o| o.to_byte()).collect();
        for byte in 0u8..=255 {
            assert_eq!(Opcode::from_byte(byte).is_some(), assigned.contains(&byte));
        }
    }

    #[test]
    fn encodings_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(seen.insert(op.to_byte()), "duplicate encoding for {op}");
        }
    }

    #[test]
    fn mnemonics_are_unique_and_lowercase() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            let m = op.mnemonic();
            assert!(seen.insert(m), "duplicate mnemonic {m}");
            assert_eq!(m, m.to_lowercase());
        }
    }

    #[test]
    fn operand_counts() {
        assert_eq!(Opcode::Halt.operands().len(), 0);
        assert_eq!(Opcode::Movl.operands().len(), 2);
        assert_eq!(Opcode::Addl3.operands().len(), 3);
        assert_eq!(Opcode::Extzv.operands().len(), 4);
        assert_eq!(Opcode::Aoblss.operands().len(), 3);
    }

    #[test]
    fn branch_operands_are_branch_kind() {
        for &op in Opcode::ALL {
            if op.is_conditional_branch() {
                let ops = op.operands();
                assert!(matches!(ops.last().unwrap().access, Access::Branch(_)));
            }
        }
    }

    #[test]
    fn branch_inversion_is_involutive() {
        for &op in Opcode::ALL {
            if let Some(inv) = op.inverted_branch() {
                assert_eq!(inv.inverted_branch(), Some(op));
                assert_ne!(inv, op);
            }
        }
    }

    #[test]
    fn privileged_set() {
        assert!(Opcode::Halt.is_privileged());
        assert!(Opcode::Mtpr.is_privileged());
        assert!(Opcode::Ldpctx.is_privileged());
        assert!(!Opcode::Movl.is_privileged());
        assert!(
            !Opcode::Chmk.is_privileged(),
            "chmk must work from user mode"
        );
    }
}
