//! # atum-arch — the SVX architecture definition
//!
//! SVX is a VAX-flavoured 32-bit CISC instruction-set architecture defined
//! for the ATUM reproduction. It keeps the properties the ATUM paper's
//! technique depends on:
//!
//! * **variable-length instructions** — an opcode byte followed by operand
//!   specifiers, so instruction fetch is a stream of byte references;
//! * **rich addressing modes** — register, deferred, autoincrement /
//!   autodecrement, displacement and displacement-deferred forms, literals
//!   and immediates (see [`AddrMode`]);
//! * **microcoded "showcase" instructions** — `CALLS`/`RET`, `MOVC3`,
//!   `INSQUE`/`REMQUE`, `SVPCTX`/`LDPCTX`, `REI` — whose multi-reference
//!   micro-flows are exactly where microcode tracing earns its keep;
//! * **VAX-style memory management** — 512-byte pages, P0/P1/System regions
//!   and software-visible page tables (see [`mem`]).
//!
//! This crate is pure data: no simulator state lives here. The micro-engine
//! (`atum-ucode`, `atum-machine`), assembler (`atum-asm`) and the
//! architectural oracle simulator (`atum-baselines`) all consume these
//! definitions, which is what keeps them mutually consistent.
//!
//! ## Example
//!
//! ```
//! use atum_arch::{Opcode, AddrMode, Gpr};
//!
//! let op = Opcode::from_byte(Opcode::Movl.to_byte()).unwrap();
//! assert_eq!(op, Opcode::Movl);
//! assert_eq!(op.operands().len(), 2);
//!
//! // Specifier byte 0x5A = mode 5 (register), register 10.
//! let (mode, _) = AddrMode::decode_specifier(0x5A).unwrap();
//! assert_eq!(mode, AddrMode::Register);
//! assert_eq!(Gpr::new(10).to_string(), "r10");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exc;
pub mod insn;
pub mod mem;
pub mod mode;
pub mod opcode;
pub mod prv;
pub mod psl;
pub mod reg;

pub use exc::{Exception, ExceptionClass, ScbVector};
pub use insn::{DecodeError, DecodedInsn, Operand};
pub use mem::{PageProt, Pte, Region, VirtAddr, PAGE_SHIFT, PAGE_SIZE};
pub use mode::{Access, AddrMode, DataSize, OperandSpec};
pub use opcode::Opcode;
pub use prv::PrivReg;
pub use psl::{CpuMode, Psl};
pub use reg::Gpr;
