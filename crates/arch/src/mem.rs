//! Memory-management architecture: pages, regions and PTEs.
//!
//! SVX keeps the VAX's unusually small **512-byte page** — the trace and TLB
//! studies are sensitive to it — and its region-divided 32-bit virtual
//! address space:
//!
//! ```text
//!  31 30 29                    9 8        0
//! ┌─────┬───────────────────────┬──────────┐
//! │ reg │   virtual page number │  offset  │
//! └─────┴───────────────────────┴──────────┘
//! ```
//!
//! | Region bits | Region | Mapped by | Grows |
//! |---|---|---|---|
//! | `00` | **P0** — program region (code, data, heap) | `P0BR`/`P0LR` | up |
//! | `01` | **P1** — control region (user stack) | `P1BR`/`P1LR` | down |
//! | `10` | **System** — shared kernel space | `SBR`/`SLR` | up |
//! | `11` | reserved | — | — |
//!
//! Deviation from the VAX: the per-process base registers (`P0BR` …) hold
//! *physical* addresses of the page tables rather than system-space virtual
//! addresses, so a translation never recurses. P1's table is indexed like
//! P0's (by VPN within the region) rather than by the VAX's backwards
//! scheme; the OS simply allocates stack pages from the top of P1 downward.
//!
//! A page-table entry:
//!
//! ```text
//!  31 30  29 28 27 26       21 20                    0
//! ┌───┬──────┬───┬──────────┬───────────────────────┐
//! │ V │ PROT │ M │ reserved │   page frame number   │
//! └───┴──────┴───┴──────────┴───────────────────────┘
//! ```

use crate::psl::CpuMode;
use std::fmt;

/// Log2 of the page size.
pub const PAGE_SHIFT: u32 = 9;
/// The page size in bytes (512, as on the VAX).
pub const PAGE_SIZE: u32 = 1 << PAGE_SHIFT;
/// Mask of the byte-within-page offset bits.
pub const PAGE_OFFSET_MASK: u32 = PAGE_SIZE - 1;
/// Number of VPN bits within a region.
pub const VPN_BITS: u32 = 21;

/// A virtual-address region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// The program region (`00`): code, globals, heap.
    P0,
    /// The control region (`01`): the user stack.
    P1,
    /// The system region (`10`): the kernel.
    System,
    /// The reserved region (`11`): any access faults.
    Reserved,
}

impl Region {
    /// Decodes the region from the top two bits of a virtual address.
    pub fn of_va(va: u32) -> Region {
        match va >> 30 {
            0 => Region::P0,
            1 => Region::P1,
            2 => Region::System,
            _ => Region::Reserved,
        }
    }

    /// The base virtual address of this region.
    pub fn base(self) -> u32 {
        match self {
            Region::P0 => 0x0000_0000,
            Region::P1 => 0x4000_0000,
            Region::System => 0x8000_0000,
            Region::Reserved => 0xC000_0000,
        }
    }

    /// Whether this region's mapping is per-process (flushed from the TLB
    /// on context switch) rather than shared system space.
    pub fn is_per_process(self) -> bool {
        matches!(self, Region::P0 | Region::P1)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::P0 => f.write_str("P0"),
            Region::P1 => f.write_str("P1"),
            Region::System => f.write_str("system"),
            Region::Reserved => f.write_str("reserved"),
        }
    }
}

/// A typed virtual address, decomposed on demand.
///
/// ```
/// use atum_arch::{Region, VirtAddr};
///
/// let va = VirtAddr(0x8000_0204);
/// assert_eq!(va.region(), Region::System);
/// assert_eq!(va.vpn(), 1);
/// assert_eq!(va.offset(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtAddr(pub u32);

impl VirtAddr {
    /// The region this address falls in.
    pub fn region(self) -> Region {
        Region::of_va(self.0)
    }

    /// The virtual page number *within its region*.
    pub fn vpn(self) -> u32 {
        (self.0 & 0x3FFF_FFFF) >> PAGE_SHIFT
    }

    /// The global page number (region bits included), used as a TLB tag.
    pub fn global_vpn(self) -> u32 {
        self.0 >> PAGE_SHIFT
    }

    /// The byte offset within the page.
    pub fn offset(self) -> u32 {
        self.0 & PAGE_OFFSET_MASK
    }

    /// The address of the start of the containing page.
    pub fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !PAGE_OFFSET_MASK)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl From<u32> for VirtAddr {
    fn from(v: u32) -> VirtAddr {
        VirtAddr(v)
    }
}

/// Page protection, a two-bit field in the PTE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageProt {
    /// No access from any mode.
    NoAccess,
    /// Kernel may read and write; user has no access.
    KernelRw,
    /// Kernel may read and write; user may read.
    KernelRwUserR,
    /// Any mode may read and write.
    AllRw,
}

impl PageProt {
    /// Decodes the PROT field.
    pub fn from_bits(bits: u32) -> PageProt {
        match bits & 0b11 {
            0 => PageProt::NoAccess,
            1 => PageProt::KernelRw,
            2 => PageProt::KernelRwUserR,
            _ => PageProt::AllRw,
        }
    }

    /// Encodes the PROT field.
    pub fn to_bits(self) -> u32 {
        match self {
            PageProt::NoAccess => 0,
            PageProt::KernelRw => 1,
            PageProt::KernelRwUserR => 2,
            PageProt::AllRw => 3,
        }
    }

    /// Whether `mode` may perform a read under this protection.
    pub fn allows_read(self, mode: CpuMode) -> bool {
        match self {
            PageProt::NoAccess => false,
            PageProt::KernelRw => mode.is_kernel(),
            PageProt::KernelRwUserR | PageProt::AllRw => true,
        }
    }

    /// Whether `mode` may perform a write under this protection.
    pub fn allows_write(self, mode: CpuMode) -> bool {
        match self {
            PageProt::NoAccess => false,
            PageProt::KernelRw | PageProt::KernelRwUserR => mode.is_kernel(),
            PageProt::AllRw => true,
        }
    }
}

/// A page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte(pub u32);

impl Pte {
    const V: u32 = 1 << 31;
    const PROT_SHIFT: u32 = 29;
    const M: u32 = 1 << 26;
    /// Number of PFN bits (21 → up to 1 GiB of physical memory).
    pub const PFN_BITS: u32 = 21;
    const PFN_MASK: u32 = (1 << Self::PFN_BITS) - 1;

    /// Builds a valid PTE.
    pub fn new(pfn: u32, prot: PageProt) -> Pte {
        assert!(pfn <= Self::PFN_MASK, "PFN {pfn:#x} out of range");
        Pte(Self::V | (prot.to_bits() << Self::PROT_SHIFT) | pfn)
    }

    /// An invalid (not-present) PTE.
    pub fn invalid() -> Pte {
        Pte(0)
    }

    /// The valid bit.
    pub fn valid(self) -> bool {
        self.0 & Self::V != 0
    }

    /// The protection field.
    pub fn prot(self) -> PageProt {
        PageProt::from_bits((self.0 >> Self::PROT_SHIFT) & 0b11)
    }

    /// The modify (dirty) bit.
    pub fn modified(self) -> bool {
        self.0 & Self::M != 0
    }

    /// Returns a copy with the modify bit set.
    pub fn with_modified(self) -> Pte {
        Pte(self.0 | Self::M)
    }

    /// The page frame number.
    pub fn pfn(self) -> u32 {
        self.0 & Self::PFN_MASK
    }

    /// The physical address of the start of the frame.
    pub fn frame_base(self) -> u32 {
        self.pfn() << PAGE_SHIFT
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.valid() {
            write!(
                f,
                "pte[pfn={:#x} prot={:?}{}]",
                self.pfn(),
                self.prot(),
                if self.modified() { " M" } else { "" }
            )
        } else {
            f.write_str("pte[invalid]")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_constants() {
        assert_eq!(PAGE_SIZE, 512);
        assert_eq!(PAGE_OFFSET_MASK, 511);
    }

    #[test]
    fn region_decode() {
        assert_eq!(Region::of_va(0x0000_1000), Region::P0);
        assert_eq!(Region::of_va(0x4000_0000), Region::P1);
        assert_eq!(Region::of_va(0x8123_4567), Region::System);
        assert_eq!(Region::of_va(0xC000_0000), Region::Reserved);
    }

    #[test]
    fn region_bases_round_trip() {
        for r in [Region::P0, Region::P1, Region::System, Region::Reserved] {
            assert_eq!(Region::of_va(r.base()), r);
        }
    }

    #[test]
    fn va_decomposition() {
        let va = VirtAddr(0x4000_0604);
        assert_eq!(va.region(), Region::P1);
        assert_eq!(va.vpn(), 3);
        assert_eq!(va.offset(), 4);
        assert_eq!(va.page_base().0, 0x4000_0600);
        assert_eq!(va.global_vpn(), 0x4000_0604 >> 9);
    }

    #[test]
    fn per_process_regions() {
        assert!(Region::P0.is_per_process());
        assert!(Region::P1.is_per_process());
        assert!(!Region::System.is_per_process());
    }

    #[test]
    fn pte_round_trip() {
        let pte = Pte::new(0x1FF, PageProt::KernelRwUserR);
        assert!(pte.valid());
        assert_eq!(pte.pfn(), 0x1FF);
        assert_eq!(pte.prot(), PageProt::KernelRwUserR);
        assert!(!pte.modified());
        assert_eq!(pte.frame_base(), 0x1FF << 9);
        let dirty = pte.with_modified();
        assert!(dirty.modified());
        assert_eq!(dirty.pfn(), pte.pfn());
    }

    #[test]
    fn invalid_pte() {
        assert!(!Pte::invalid().valid());
    }

    #[test]
    fn protection_semantics() {
        use CpuMode::*;
        assert!(!PageProt::NoAccess.allows_read(Kernel));
        assert!(PageProt::KernelRw.allows_read(Kernel));
        assert!(!PageProt::KernelRw.allows_read(User));
        assert!(PageProt::KernelRwUserR.allows_read(User));
        assert!(!PageProt::KernelRwUserR.allows_write(User));
        assert!(PageProt::KernelRwUserR.allows_write(Kernel));
        assert!(PageProt::AllRw.allows_write(User));
    }

    #[test]
    fn prot_bits_round_trip() {
        for bits in 0..4 {
            assert_eq!(PageProt::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pfn_overflow_panics() {
        let _ = Pte::new(1 << 21, PageProt::AllRw);
    }
}
