//! Operand specifiers: addressing modes, access types and data sizes.
//!
//! Every non-branch operand of an SVX instruction is described in the
//! instruction stream by a *specifier*: one byte whose high nibble selects
//! the addressing mode and whose low nibble names a register, possibly
//! followed by a displacement or immediate. This is the VAX scheme, minus
//! indexed mode (mode 4), which SVX reserves — a documented simplification
//! (array code computes its addresses with `ashl`/`addl3` instead).
//!
//! Specifier encodings:
//!
//! | High nibble | Mode | With `pc` as the register |
//! |---|---|---|
//! | `0..=3` | short literal (6-bit, value `byte & 0x3F`) | — |
//! | `4` | *reserved* (VAX indexed) | — |
//! | `5` | register `Rn` | reserved |
//! | `6` | register deferred `(Rn)` | reserved |
//! | `7` | autodecrement `-(Rn)` | reserved |
//! | `8` | autoincrement `(Rn)+` | immediate `#imm` |
//! | `9` | autoincrement deferred `@(Rn)+` | absolute `@#addr` |
//! | `A` | byte displacement `d8(Rn)` | byte-relative |
//! | `B` | byte displacement deferred `@d8(Rn)` | byte-relative deferred |
//! | `C` | word displacement `d16(Rn)` | word-relative |
//! | `D` | word displacement deferred `@d16(Rn)` | word-relative deferred |
//! | `E` | long displacement `d32(Rn)` | long-relative |
//! | `F` | long displacement deferred `@d32(Rn)` | long-relative deferred |

use std::fmt;

/// Operand data size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataSize {
    /// 8 bits.
    Byte,
    /// 16 bits.
    Word,
    /// 32 bits.
    Long,
}

impl DataSize {
    /// Size in bytes (1, 2 or 4).
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            DataSize::Byte => 1,
            DataSize::Word => 2,
            DataSize::Long => 4,
        }
    }

    /// Size in bits (8, 16 or 32).
    #[inline]
    pub fn bits(self) -> u32 {
        self.bytes() * 8
    }

    /// Mask selecting the low `bits()` bits of a longword.
    #[inline]
    pub fn mask(self) -> u32 {
        match self {
            DataSize::Byte => 0xFF,
            DataSize::Word => 0xFFFF,
            DataSize::Long => 0xFFFF_FFFF,
        }
    }

    /// The sign bit for this size.
    #[inline]
    pub fn sign_bit(self) -> u32 {
        1 << (self.bits() - 1)
    }

    /// Sign-extends `value` (assumed masked to this size) to 32 bits.
    #[inline]
    pub fn sign_extend(self, value: u32) -> u32 {
        let v = value & self.mask();
        if v & self.sign_bit() != 0 {
            v | !self.mask()
        } else {
            v
        }
    }

    /// Truncates `value` to this size.
    #[inline]
    pub fn truncate(self, value: u32) -> u32 {
        value & self.mask()
    }
}

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataSize::Byte => f.write_str("b"),
            DataSize::Word => f.write_str("w"),
            DataSize::Long => f.write_str("l"),
        }
    }
}

/// How an instruction uses an operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// The operand value is read.
    Read,
    /// The operand is written.
    Write,
    /// The operand is read, then written (e.g. `incl`).
    Modify,
    /// The operand's *address* is taken; no data reference is made by the
    /// specifier itself (e.g. `moval`, `jmp`, `movc3` pointers).
    Address,
    /// A branch displacement embedded directly in the instruction stream
    /// (no specifier byte); the payload is the displacement size.
    Branch(DataSize),
}

impl Access {
    /// Whether this access kind is encoded as an operand specifier (true)
    /// or as a bare displacement in the instruction stream (false).
    #[inline]
    pub fn has_specifier(self) -> bool {
        !matches!(self, Access::Branch(_))
    }
}

/// One operand slot of an instruction: its access type and data size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandSpec {
    /// How the operand is accessed.
    pub access: Access,
    /// The operand's data size.
    pub size: DataSize,
}

impl OperandSpec {
    /// Shorthand constructor.
    pub const fn new(access: Access, size: DataSize) -> OperandSpec {
        OperandSpec { access, size }
    }
}

/// `.rb` — read byte.
pub const RB: OperandSpec = OperandSpec::new(Access::Read, DataSize::Byte);
/// `.rw` — read word.
pub const RW: OperandSpec = OperandSpec::new(Access::Read, DataSize::Word);
/// `.rl` — read longword.
pub const RL: OperandSpec = OperandSpec::new(Access::Read, DataSize::Long);
/// `.wb` — write byte.
pub const WB: OperandSpec = OperandSpec::new(Access::Write, DataSize::Byte);
/// `.ww` — write word.
pub const WW: OperandSpec = OperandSpec::new(Access::Write, DataSize::Word);
/// `.wl` — write longword.
pub const WL: OperandSpec = OperandSpec::new(Access::Write, DataSize::Long);
/// `.mb` — modify byte.
pub const MB: OperandSpec = OperandSpec::new(Access::Modify, DataSize::Byte);
/// `.mw` — modify word.
pub const MW: OperandSpec = OperandSpec::new(Access::Modify, DataSize::Word);
/// `.ml` — modify longword.
pub const ML: OperandSpec = OperandSpec::new(Access::Modify, DataSize::Long);
/// `.ab` — address of a byte.
pub const AB: OperandSpec = OperandSpec::new(Access::Address, DataSize::Byte);
/// `.al` — address of a longword.
pub const AL: OperandSpec = OperandSpec::new(Access::Address, DataSize::Long);
/// `.bb` — byte branch displacement.
pub const BB: OperandSpec = OperandSpec::new(Access::Branch(DataSize::Byte), DataSize::Byte);
/// `.bw` — word branch displacement.
pub const BW: OperandSpec = OperandSpec::new(Access::Branch(DataSize::Word), DataSize::Word);

/// Addressing mode of an operand specifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrMode {
    /// 6-bit short literal (specifier high nibble 0–3).
    Literal,
    /// `Rn` — the operand lives in a register.
    Register,
    /// `(Rn)` — register holds the address.
    RegDeferred,
    /// `-(Rn)` — decrement register by operand size, then use as address.
    AutoDec,
    /// `(Rn)+` — use register as address, then increment by operand size.
    /// With `pc`: immediate.
    AutoInc,
    /// `@(Rn)+` — register points at a longword holding the address.
    /// With `pc`: absolute.
    AutoIncDeferred,
    /// `d(Rn)` — displacement plus register. Payload is displacement size.
    Displacement(DataSize),
    /// `@d(Rn)` — displacement plus register points at the address.
    DisplacementDeferred(DataSize),
}

/// Error returned when a specifier byte encodes a reserved addressing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReservedModeError {
    /// The offending specifier byte.
    pub specifier: u8,
}

impl fmt::Display for ReservedModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reserved addressing mode in specifier byte {:#04x}",
            self.specifier
        )
    }
}

impl std::error::Error for ReservedModeError {}

impl AddrMode {
    /// Decodes a specifier byte into `(mode, register-nibble)`.
    ///
    /// For [`AddrMode::Literal`] the "register" nibble is the low four bits
    /// of the 6-bit literal; callers wanting the literal value should use
    /// `specifier & 0x3F`.
    ///
    /// # Errors
    ///
    /// Returns [`ReservedModeError`] for mode 4 (indexed — reserved in SVX).
    #[inline]
    pub fn decode_specifier(specifier: u8) -> Result<(AddrMode, u8), ReservedModeError> {
        let reg = specifier & 0x0F;
        let mode = match specifier >> 4 {
            0..=3 => AddrMode::Literal,
            4 => return Err(ReservedModeError { specifier }),
            5 => AddrMode::Register,
            6 => AddrMode::RegDeferred,
            7 => AddrMode::AutoDec,
            8 => AddrMode::AutoInc,
            9 => AddrMode::AutoIncDeferred,
            0xA => AddrMode::Displacement(DataSize::Byte),
            0xB => AddrMode::DisplacementDeferred(DataSize::Byte),
            0xC => AddrMode::Displacement(DataSize::Word),
            0xD => AddrMode::DisplacementDeferred(DataSize::Word),
            0xE => AddrMode::Displacement(DataSize::Long),
            0xF => AddrMode::DisplacementDeferred(DataSize::Long),
            _ => unreachable!("nibble > 15"),
        };
        Ok((mode, reg))
    }

    /// The high nibble this mode encodes to (for non-literal modes).
    ///
    /// Literal returns 0; encoders place the literal's high two bits there.
    #[inline]
    pub fn encode_nibble(self) -> u8 {
        match self {
            AddrMode::Literal => 0,
            AddrMode::Register => 5,
            AddrMode::RegDeferred => 6,
            AddrMode::AutoDec => 7,
            AddrMode::AutoInc => 8,
            AddrMode::AutoIncDeferred => 9,
            AddrMode::Displacement(DataSize::Byte) => 0xA,
            AddrMode::DisplacementDeferred(DataSize::Byte) => 0xB,
            AddrMode::Displacement(DataSize::Word) => 0xC,
            AddrMode::DisplacementDeferred(DataSize::Word) => 0xD,
            AddrMode::Displacement(DataSize::Long) => 0xE,
            AddrMode::DisplacementDeferred(DataSize::Long) => 0xF,
        }
    }

    /// Number of extension bytes (displacement/immediate) that follow the
    /// specifier byte, for an operand of size `op_size`, when the register
    /// is `reg` (PC matters: autoincrement-PC is an immediate whose length
    /// is the operand size).
    #[inline]
    pub fn extension_bytes(self, op_size: DataSize, reg: u8) -> u32 {
        match self {
            AddrMode::Literal | AddrMode::Register | AddrMode::RegDeferred | AddrMode::AutoDec => 0,
            AddrMode::AutoInc => {
                if reg == 15 {
                    op_size.bytes()
                } else {
                    0
                }
            }
            AddrMode::AutoIncDeferred => {
                if reg == 15 {
                    4
                } else {
                    0
                }
            }
            AddrMode::Displacement(d) | AddrMode::DisplacementDeferred(d) => d.bytes(),
        }
    }
}

impl fmt::Display for AddrMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrMode::Literal => f.write_str("literal"),
            AddrMode::Register => f.write_str("register"),
            AddrMode::RegDeferred => f.write_str("register deferred"),
            AddrMode::AutoDec => f.write_str("autodecrement"),
            AddrMode::AutoInc => f.write_str("autoincrement"),
            AddrMode::AutoIncDeferred => f.write_str("autoincrement deferred"),
            AddrMode::Displacement(d) => write!(f, "{d}-displacement"),
            AddrMode::DisplacementDeferred(d) => write!(f, "{d}-displacement deferred"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_size_arithmetic() {
        assert_eq!(DataSize::Byte.bytes(), 1);
        assert_eq!(DataSize::Word.bytes(), 2);
        assert_eq!(DataSize::Long.bytes(), 4);
        assert_eq!(DataSize::Byte.mask(), 0xFF);
        assert_eq!(DataSize::Word.sign_bit(), 0x8000);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(DataSize::Byte.sign_extend(0x80), 0xFFFF_FF80);
        assert_eq!(DataSize::Byte.sign_extend(0x7F), 0x7F);
        assert_eq!(DataSize::Word.sign_extend(0xFFFF), 0xFFFF_FFFF);
        assert_eq!(DataSize::Word.sign_extend(0x1234), 0x1234);
        assert_eq!(DataSize::Long.sign_extend(0x8000_0000), 0x8000_0000);
    }

    #[test]
    fn decode_every_literal_nibble() {
        for hi in 0u8..=3 {
            let spec = (hi << 4) | 0x2A & 0x0F;
            let (mode, _) = AddrMode::decode_specifier(spec).unwrap();
            assert_eq!(mode, AddrMode::Literal);
        }
    }

    #[test]
    fn decode_register_modes() {
        assert_eq!(
            AddrMode::decode_specifier(0x53).unwrap(),
            (AddrMode::Register, 3)
        );
        assert_eq!(
            AddrMode::decode_specifier(0x6E).unwrap(),
            (AddrMode::RegDeferred, 14)
        );
        assert_eq!(
            AddrMode::decode_specifier(0x7E).unwrap(),
            (AddrMode::AutoDec, 14)
        );
        assert_eq!(
            AddrMode::decode_specifier(0x8F).unwrap(),
            (AddrMode::AutoInc, 15)
        );
        assert_eq!(
            AddrMode::decode_specifier(0x9F).unwrap(),
            (AddrMode::AutoIncDeferred, 15)
        );
    }

    #[test]
    fn decode_displacement_modes() {
        use DataSize::*;
        assert_eq!(
            AddrMode::decode_specifier(0xA5).unwrap().0,
            AddrMode::Displacement(Byte)
        );
        assert_eq!(
            AddrMode::decode_specifier(0xB5).unwrap().0,
            AddrMode::DisplacementDeferred(Byte)
        );
        assert_eq!(
            AddrMode::decode_specifier(0xC5).unwrap().0,
            AddrMode::Displacement(Word)
        );
        assert_eq!(
            AddrMode::decode_specifier(0xD5).unwrap().0,
            AddrMode::DisplacementDeferred(Word)
        );
        assert_eq!(
            AddrMode::decode_specifier(0xE5).unwrap().0,
            AddrMode::Displacement(Long)
        );
        assert_eq!(
            AddrMode::decode_specifier(0xF5).unwrap().0,
            AddrMode::DisplacementDeferred(Long)
        );
    }

    #[test]
    fn indexed_mode_is_reserved() {
        let err = AddrMode::decode_specifier(0x42).unwrap_err();
        assert_eq!(err.specifier, 0x42);
        assert!(err.to_string().contains("0x42"));
    }

    #[test]
    fn encode_decode_round_trip() {
        for spec in 0u8..=255 {
            if spec >> 4 == 4 {
                continue;
            }
            let (mode, reg) = AddrMode::decode_specifier(spec).unwrap();
            if mode == AddrMode::Literal {
                continue;
            }
            let re = (mode.encode_nibble() << 4) | reg;
            assert_eq!(re, spec);
        }
    }

    #[test]
    fn extension_byte_counts() {
        use DataSize::*;
        assert_eq!(AddrMode::Register.extension_bytes(Long, 3), 0);
        assert_eq!(AddrMode::AutoInc.extension_bytes(Long, 3), 0);
        // Immediate: operand-size bytes follow.
        assert_eq!(AddrMode::AutoInc.extension_bytes(Long, 15), 4);
        assert_eq!(AddrMode::AutoInc.extension_bytes(Byte, 15), 1);
        // Absolute: always a longword address.
        assert_eq!(AddrMode::AutoIncDeferred.extension_bytes(Byte, 15), 4);
        assert_eq!(AddrMode::Displacement(Word).extension_bytes(Byte, 2), 2);
        assert_eq!(
            AddrMode::DisplacementDeferred(Long).extension_bytes(Byte, 2),
            4
        );
    }

    #[test]
    fn branch_access_has_no_specifier() {
        assert!(!Access::Branch(DataSize::Byte).has_specifier());
        assert!(Access::Read.has_specifier());
        assert!(Access::Address.has_specifier());
    }
}
