//! The processor status longword (PSL).
//!
//! Layout (a compatible subset of the VAX PSL):
//!
//! ```text
//!  31            26  25 24  23 22  20     16        4  3  2  1  0
//! ┌───────────────┬─────┬──────┬──────────┬─────────┬──┬──┬──┬──┬──┐
//! │   reserved    │ CUR │ PRV  │   IPL    │reserved │ T│ N│ Z│ V│ C│
//! └───────────────┴─────┴──────┴──────────┴─────────┴──┴──┴──┴──┴──┘
//! ```
//!
//! * `C V Z N` — the condition codes.
//! * `T` — the trace (single-step) bit; when set, a [`TraceTrap`] is taken
//!   after each instruction. The T-bit software tracer baseline in
//!   `atum-baselines` is built on this, exactly like pre-ATUM trap-driven
//!   tracers.
//! * `IPL` — current interrupt priority level, 0–31.
//! * `CUR`/`PRV` — current and previous CPU mode. SVX implements two of the
//!   VAX's four modes: kernel (0) and user (3). This is a documented
//!   simplification; the trace studies only distinguish "operating system"
//!   from "user" references.
//!
//! [`TraceTrap`]: crate::exc::Exception::TraceTrap

use std::fmt;

/// CPU privilege mode.
///
/// SVX has two modes where the VAX had four; the encodings (0 and 3) match
/// the VAX's kernel and user encodings so PSL images look familiar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CpuMode {
    /// Most privileged mode; MTPR/MFPR and other privileged work allowed.
    #[default]
    Kernel,
    /// Unprivileged mode; all application code runs here.
    User,
}

impl CpuMode {
    /// Decodes a two-bit mode field. Encodings 1 and 2 (the VAX's executive
    /// and supervisor modes) collapse to [`CpuMode::User`].
    #[inline]
    pub fn from_bits(bits: u32) -> CpuMode {
        if bits & 0b11 == 0 {
            CpuMode::Kernel
        } else {
            CpuMode::User
        }
    }

    /// The two-bit field encoding of this mode.
    #[inline]
    pub fn to_bits(self) -> u32 {
        match self {
            CpuMode::Kernel => 0,
            CpuMode::User => 3,
        }
    }

    /// Whether this is kernel mode.
    #[inline]
    pub fn is_kernel(self) -> bool {
        matches!(self, CpuMode::Kernel)
    }
}

impl fmt::Display for CpuMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuMode::Kernel => f.write_str("kernel"),
            CpuMode::User => f.write_str("user"),
        }
    }
}

/// The processor status longword.
///
/// A transparent wrapper over the raw 32-bit image with typed accessors;
/// exception micro-flows push and pop the raw image, so round-tripping
/// through [`Psl::bits`] / [`Psl::from_bits`] must be lossless.
///
/// ```
/// use atum_arch::{CpuMode, Psl};
///
/// let mut psl = Psl::new();
/// psl.set_mode(CpuMode::User);
/// psl.set_z(true);
/// let image = psl.bits();
/// assert_eq!(Psl::from_bits(image), psl);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Psl(u32);

impl Psl {
    /// Carry condition code.
    pub const C: u32 = 1 << 0;
    /// Overflow condition code.
    pub const V: u32 = 1 << 1;
    /// Zero condition code.
    pub const Z: u32 = 1 << 2;
    /// Negative condition code.
    pub const N: u32 = 1 << 3;
    /// Trace (single-step) trap enable.
    pub const T: u32 = 1 << 4;
    /// Trace-pending internal bit: latched copy of T sampled at the start of
    /// the instruction so that setting/clearing T takes effect one
    /// instruction later, as on the VAX.
    pub const TP: u32 = 1 << 30;

    const IPL_SHIFT: u32 = 16;
    const IPL_MASK: u32 = 0x1F << Self::IPL_SHIFT;
    const CUR_SHIFT: u32 = 24;
    const CUR_MASK: u32 = 0b11 << Self::CUR_SHIFT;
    const PRV_SHIFT: u32 = 22;
    const PRV_MASK: u32 = 0b11 << Self::PRV_SHIFT;

    /// Bits that may actually be set in a PSL image; the rest read as zero.
    pub const VALID_MASK: u32 = Self::C
        | Self::V
        | Self::Z
        | Self::N
        | Self::T
        | Self::TP
        | Self::IPL_MASK
        | Self::CUR_MASK
        | Self::PRV_MASK;

    /// A boot-state PSL: kernel mode, IPL 31, no condition codes.
    #[inline]
    pub fn new() -> Psl {
        let mut p = Psl(0);
        p.set_ipl(31);
        p
    }

    /// Reconstructs a PSL from a raw image, discarding must-be-zero bits.
    #[inline]
    pub fn from_bits(bits: u32) -> Psl {
        Psl(bits & Self::VALID_MASK)
    }

    /// The raw 32-bit image.
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Carry flag.
    #[inline]
    pub fn c(self) -> bool {
        self.0 & Self::C != 0
    }

    /// Overflow flag.
    #[inline]
    pub fn v(self) -> bool {
        self.0 & Self::V != 0
    }

    /// Zero flag.
    #[inline]
    pub fn z(self) -> bool {
        self.0 & Self::Z != 0
    }

    /// Negative flag.
    #[inline]
    pub fn n(self) -> bool {
        self.0 & Self::N != 0
    }

    /// Trace-trap enable flag.
    #[inline]
    pub fn t(self) -> bool {
        self.0 & Self::T != 0
    }

    /// Trace-pending flag (internal; see [`Psl::TP`]).
    #[inline]
    pub fn tp(self) -> bool {
        self.0 & Self::TP != 0
    }

    /// Sets the carry flag.
    #[inline]
    pub fn set_c(&mut self, on: bool) {
        self.set_bit(Self::C, on);
    }

    /// Sets the overflow flag.
    #[inline]
    pub fn set_v(&mut self, on: bool) {
        self.set_bit(Self::V, on);
    }

    /// Sets the zero flag.
    #[inline]
    pub fn set_z(&mut self, on: bool) {
        self.set_bit(Self::Z, on);
    }

    /// Sets the negative flag.
    #[inline]
    pub fn set_n(&mut self, on: bool) {
        self.set_bit(Self::N, on);
    }

    /// Sets the trace-trap enable flag.
    #[inline]
    pub fn set_t(&mut self, on: bool) {
        self.set_bit(Self::T, on);
    }

    /// Sets the trace-pending flag.
    #[inline]
    pub fn set_tp(&mut self, on: bool) {
        self.set_bit(Self::TP, on);
    }

    /// Writes all four condition codes at once.
    #[inline]
    pub fn set_cc(&mut self, n: bool, z: bool, v: bool, c: bool) {
        self.set_n(n);
        self.set_z(z);
        self.set_v(v);
        self.set_c(c);
    }

    /// The current interrupt priority level (0–31).
    #[inline]
    pub fn ipl(self) -> u8 {
        ((self.0 & Self::IPL_MASK) >> Self::IPL_SHIFT) as u8
    }

    /// Sets the interrupt priority level.
    ///
    /// # Panics
    ///
    /// Panics if `ipl > 31`.
    #[inline]
    pub fn set_ipl(&mut self, ipl: u8) {
        assert!(ipl < 32, "IPL {ipl} out of range");
        self.0 = (self.0 & !Self::IPL_MASK) | ((ipl as u32) << Self::IPL_SHIFT);
    }

    /// The current CPU mode.
    #[inline]
    pub fn mode(self) -> CpuMode {
        CpuMode::from_bits((self.0 & Self::CUR_MASK) >> Self::CUR_SHIFT)
    }

    /// Sets the current CPU mode.
    #[inline]
    pub fn set_mode(&mut self, mode: CpuMode) {
        self.0 = (self.0 & !Self::CUR_MASK) | (mode.to_bits() << Self::CUR_SHIFT);
    }

    /// The previous CPU mode (recorded on exception entry).
    #[inline]
    pub fn prev_mode(self) -> CpuMode {
        CpuMode::from_bits((self.0 & Self::PRV_MASK) >> Self::PRV_SHIFT)
    }

    /// Sets the previous CPU mode.
    #[inline]
    pub fn set_prev_mode(&mut self, mode: CpuMode) {
        self.0 = (self.0 & !Self::PRV_MASK) | (mode.to_bits() << Self::PRV_SHIFT);
    }

    /// Whether the CPU is in kernel mode.
    #[inline]
    pub fn is_kernel(self) -> bool {
        self.mode().is_kernel()
    }

    fn set_bit(&mut self, bit: u32, on: bool) {
        if on {
            self.0 |= bit;
        } else {
            self.0 &= !bit;
        }
    }
}

impl fmt::Display for Psl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ipl={} [{}{}{}{}{}]",
            self.mode(),
            self.ipl(),
            if self.n() { 'N' } else { '-' },
            if self.z() { 'Z' } else { '-' },
            if self.v() { 'V' } else { '-' },
            if self.c() { 'C' } else { '-' },
            if self.t() { 'T' } else { '-' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_psl_is_kernel_ipl31() {
        let p = Psl::new();
        assert!(p.is_kernel());
        assert_eq!(p.ipl(), 31);
        assert!(!p.c() && !p.v() && !p.z() && !p.n() && !p.t());
    }

    #[test]
    fn condition_codes_round_trip() {
        let mut p = Psl::new();
        p.set_cc(true, false, true, false);
        assert!(p.n());
        assert!(!p.z());
        assert!(p.v());
        assert!(!p.c());
        p.set_cc(false, true, false, true);
        assert!(!p.n());
        assert!(p.z());
        assert!(!p.v());
        assert!(p.c());
    }

    #[test]
    fn mode_field_round_trips() {
        let mut p = Psl::new();
        p.set_mode(CpuMode::User);
        p.set_prev_mode(CpuMode::Kernel);
        assert_eq!(p.mode(), CpuMode::User);
        assert_eq!(p.prev_mode(), CpuMode::Kernel);
        assert!(!p.is_kernel());
        let q = Psl::from_bits(p.bits());
        assert_eq!(p, q);
    }

    #[test]
    fn ipl_round_trips_and_masks() {
        let mut p = Psl::new();
        for ipl in 0..32 {
            p.set_ipl(ipl);
            assert_eq!(p.ipl(), ipl);
        }
    }

    #[test]
    fn from_bits_discards_reserved() {
        let p = Psl::from_bits(0xFFFF_FFFF);
        assert_eq!(p.bits() & !Psl::VALID_MASK, 0);
        assert_eq!(p.ipl(), 31);
        assert!(p.t());
    }

    #[test]
    fn mode_encodings_match_vax() {
        assert_eq!(CpuMode::Kernel.to_bits(), 0);
        assert_eq!(CpuMode::User.to_bits(), 3);
        assert_eq!(CpuMode::from_bits(0), CpuMode::Kernel);
        assert_eq!(CpuMode::from_bits(3), CpuMode::User);
        // Executive/supervisor collapse to user.
        assert_eq!(CpuMode::from_bits(1), CpuMode::User);
        assert_eq!(CpuMode::from_bits(2), CpuMode::User);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Psl::new().to_string().is_empty());
        assert!(!CpuMode::User.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ipl_out_of_range_panics() {
        Psl::new().set_ipl(32);
    }
}
