//! Exceptions, interrupts and the system control block (SCB).
//!
//! The SCB is one physical page (pointed at by the `SCBB` privileged
//! register) of longword vectors. Exception and interrupt micro-flows push
//! PSL, PC and any parameters onto the kernel stack and fetch the new PC
//! from `SCBB + vector`.
//!
//! Faults push the PC **of** the faulting instruction (so `rei` retries it);
//! traps push the PC of the **next** instruction. Aborts are faults whose
//! instruction may be partially complete — the register change-log in the
//! machine unwinds their side effects first, restoring fault semantics.

use crate::mem::VirtAddr;
use std::fmt;

/// SCB vector byte offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u32)]
pub enum ScbVector {
    /// Machine check: internal inconsistency.
    MachineCheck = 0x04,
    /// Kernel stack not valid during exception processing.
    KernelStackInvalid = 0x08,
    /// Reserved or unimplemented opcode.
    ReservedInstruction = 0x10,
    /// Reserved operand form (e.g. bad privileged-register number).
    ReservedOperand = 0x14,
    /// Reserved addressing mode (e.g. indexed, or literal as destination).
    ReservedAddrMode = 0x18,
    /// Access-control violation (protection denied). Parameter: the VA.
    AccessViolation = 0x20,
    /// Translation not valid (page fault). Parameter: the VA.
    TranslationInvalid = 0x24,
    /// Trace (T-bit) trap, taken after each traced instruction.
    TraceTrap = 0x28,
    /// Breakpoint (`bpt`) trap.
    Breakpoint = 0x2C,
    /// Arithmetic trap. Parameter: an [`ArithKind`] code.
    Arithmetic = 0x30,
    /// Change-mode-to-kernel trap (`chmk`). Parameter: the code operand.
    Chmk = 0x40,
    /// Base of the software-interrupt vectors: level *n* uses `0x80 + 4n`.
    SoftwareBase = 0x80,
    /// Interval timer interrupt (IPL [`IPL_TIMER`]).
    IntervalTimer = 0xC0,
    /// Console receive interrupt (IPL [`IPL_CONSOLE`]).
    ConsoleReceive = 0xF8,
    /// Console transmit interrupt (IPL [`IPL_CONSOLE`]).
    ConsoleTransmit = 0xFC,
}

impl ScbVector {
    /// The vector's byte offset within the SCB page.
    pub fn offset(self) -> u32 {
        self as u32
    }

    /// The vector for software-interrupt level `level` (1–15).
    ///
    /// # Panics
    ///
    /// Panics if `level` is 0 or above 15.
    pub fn software(level: u8) -> u32 {
        assert!((1..=15).contains(&level), "software IRQ level {level}");
        Self::SoftwareBase.offset() + 4 * level as u32
    }
}

/// IPL at which the interval timer interrupts.
pub const IPL_TIMER: u8 = 22;
/// IPL at which the console device interrupts.
pub const IPL_CONSOLE: u8 = 20;
/// Highest IPL (all interrupts blocked).
pub const IPL_MAX: u8 = 31;

/// Arithmetic-trap type codes, pushed as the trap parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ArithKind {
    /// Integer overflow.
    Overflow = 1,
    /// Integer divide by zero.
    DivideByZero = 2,
}

/// Whether an exception is fault-like or trap-like (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionClass {
    /// Pushes the faulting instruction's PC; instruction restarts on `rei`.
    Fault,
    /// Pushes the next instruction's PC.
    Trap,
}

/// An exception condition detected during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exception {
    /// Unassigned opcode byte.
    ReservedInstruction,
    /// Reserved operand (bad privileged register, bad mask, ...).
    ReservedOperand,
    /// Reserved addressing mode, or a nonsense mode for the access type.
    ReservedAddrMode,
    /// Protection violation at the given VA.
    AccessViolation(VirtAddr),
    /// Page not valid at the given VA.
    TranslationInvalid(VirtAddr),
    /// T-bit single-step trap.
    TraceTrap,
    /// `bpt` executed.
    Breakpoint,
    /// Arithmetic trap of the given kind.
    Arithmetic(ArithKind),
    /// `chmk` executed with the given code.
    Chmk(u16),
    /// Privileged instruction executed in user mode. Delivered through the
    /// reserved-instruction vector, as on the VAX.
    PrivilegedInstruction,
    /// Machine check: the micro-engine detected an internal inconsistency
    /// (e.g. kernel stack unmapped during exception entry).
    MachineCheck,
}

impl Exception {
    /// The SCB vector this exception dispatches through.
    pub fn vector(self) -> u32 {
        match self {
            Exception::ReservedInstruction | Exception::PrivilegedInstruction => {
                ScbVector::ReservedInstruction.offset()
            }
            Exception::ReservedOperand => ScbVector::ReservedOperand.offset(),
            Exception::ReservedAddrMode => ScbVector::ReservedAddrMode.offset(),
            Exception::AccessViolation(_) => ScbVector::AccessViolation.offset(),
            Exception::TranslationInvalid(_) => ScbVector::TranslationInvalid.offset(),
            Exception::TraceTrap => ScbVector::TraceTrap.offset(),
            Exception::Breakpoint => ScbVector::Breakpoint.offset(),
            Exception::Arithmetic(_) => ScbVector::Arithmetic.offset(),
            Exception::Chmk(_) => ScbVector::Chmk.offset(),
            Exception::MachineCheck => ScbVector::MachineCheck.offset(),
        }
    }

    /// Fault or trap (determines which PC is pushed).
    pub fn class(self) -> ExceptionClass {
        match self {
            Exception::ReservedInstruction
            | Exception::PrivilegedInstruction
            | Exception::ReservedOperand
            | Exception::ReservedAddrMode
            | Exception::AccessViolation(_)
            | Exception::TranslationInvalid(_)
            | Exception::MachineCheck => ExceptionClass::Fault,
            Exception::TraceTrap
            | Exception::Breakpoint
            | Exception::Arithmetic(_)
            | Exception::Chmk(_) => ExceptionClass::Trap,
        }
    }

    /// The extra longword pushed above PC/PSL, if this exception has one.
    pub fn parameter(self) -> Option<u32> {
        match self {
            Exception::AccessViolation(va) | Exception::TranslationInvalid(va) => Some(va.0),
            Exception::Arithmetic(kind) => Some(kind as u32),
            Exception::Chmk(code) => Some(code as u32),
            _ => None,
        }
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exception::ReservedInstruction => f.write_str("reserved instruction"),
            Exception::PrivilegedInstruction => f.write_str("privileged instruction in user mode"),
            Exception::ReservedOperand => f.write_str("reserved operand"),
            Exception::ReservedAddrMode => f.write_str("reserved addressing mode"),
            Exception::AccessViolation(va) => write!(f, "access violation at {va}"),
            Exception::TranslationInvalid(va) => write!(f, "translation not valid at {va}"),
            Exception::TraceTrap => f.write_str("trace trap"),
            Exception::Breakpoint => f.write_str("breakpoint"),
            Exception::Arithmetic(k) => write!(f, "arithmetic trap ({k:?})"),
            Exception::Chmk(code) => write!(f, "chmk #{code}"),
            Exception::MachineCheck => f.write_str("machine check"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_are_longword_aligned_and_unique() {
        let vs = [
            ScbVector::MachineCheck,
            ScbVector::KernelStackInvalid,
            ScbVector::ReservedInstruction,
            ScbVector::ReservedOperand,
            ScbVector::ReservedAddrMode,
            ScbVector::AccessViolation,
            ScbVector::TranslationInvalid,
            ScbVector::TraceTrap,
            ScbVector::Breakpoint,
            ScbVector::Arithmetic,
            ScbVector::Chmk,
            ScbVector::IntervalTimer,
            ScbVector::ConsoleReceive,
            ScbVector::ConsoleTransmit,
        ];
        let mut seen = std::collections::HashSet::new();
        for v in vs {
            assert_eq!(v.offset() % 4, 0);
            assert!(v.offset() < 512, "vector fits in the SCB page");
            assert!(seen.insert(v.offset()));
        }
    }

    #[test]
    fn software_vectors() {
        assert_eq!(ScbVector::software(1), 0x84);
        assert_eq!(ScbVector::software(15), 0x80 + 60);
    }

    #[test]
    #[should_panic(expected = "software IRQ level")]
    fn software_level_zero_panics() {
        ScbVector::software(0);
    }

    #[test]
    fn fault_vs_trap_classes() {
        assert_eq!(
            Exception::TranslationInvalid(VirtAddr(0)).class(),
            ExceptionClass::Fault
        );
        assert_eq!(Exception::Chmk(3).class(), ExceptionClass::Trap);
        assert_eq!(Exception::TraceTrap.class(), ExceptionClass::Trap);
        assert_eq!(
            Exception::ReservedInstruction.class(),
            ExceptionClass::Fault
        );
    }

    #[test]
    fn parameters() {
        assert_eq!(
            Exception::AccessViolation(VirtAddr(0x1234)).parameter(),
            Some(0x1234)
        );
        assert_eq!(Exception::Chmk(7).parameter(), Some(7));
        assert_eq!(
            Exception::Arithmetic(ArithKind::DivideByZero).parameter(),
            Some(2)
        );
        assert_eq!(Exception::TraceTrap.parameter(), None);
    }

    #[test]
    fn privileged_instruction_uses_reserved_vector() {
        assert_eq!(
            Exception::PrivilegedInstruction.vector(),
            Exception::ReservedInstruction.vector()
        );
    }

    #[test]
    fn display_mentions_address() {
        let s = Exception::TranslationInvalid(VirtAddr(0x8000_0000)).to_string();
        assert!(s.contains("0x80000000"));
    }
}
