//! General-purpose register names.
//!
//! SVX has sixteen 32-bit general-purpose registers. As on the VAX, the top
//! four have architectural roles: `r12` is the argument pointer (AP), `r13`
//! the frame pointer (FP), `r14` the stack pointer (SP) and `r15` the
//! program counter (PC). The PC being a general register is what makes the
//! PC-relative flavours of the addressing modes (immediate, absolute,
//! relative) fall out of the ordinary specifier encodings.

use std::fmt;

/// A general-purpose register index (`r0`–`r15`).
///
/// ```
/// use atum_arch::Gpr;
/// assert_eq!(Gpr::SP.index(), 14);
/// assert_eq!(Gpr::PC.to_string(), "pc");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpr(u8);

impl Gpr {
    /// The argument pointer (`r12`).
    pub const AP: Gpr = Gpr(12);
    /// The frame pointer (`r13`).
    pub const FP: Gpr = Gpr(13);
    /// The stack pointer (`r14`).
    pub const SP: Gpr = Gpr(14);
    /// The program counter (`r15`).
    pub const PC: Gpr = Gpr(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    pub fn new(index: u8) -> Gpr {
        assert!(index < 16, "register index {index} out of range");
        Gpr(index)
    }

    /// Creates a register from the low four bits of `raw`, ignoring the rest.
    ///
    /// This is the decoder-side constructor: operand specifier bytes carry
    /// the register number in their low nibble.
    pub fn from_nibble(raw: u8) -> Gpr {
        Gpr(raw & 0x0F)
    }

    /// The register's index, in `0..16`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this register is the program counter.
    pub fn is_pc(self) -> bool {
        self.0 == 15
    }

    /// Whether this register is the stack pointer.
    pub fn is_sp(self) -> bool {
        self.0 == 14
    }

    /// Iterates over all sixteen registers in index order.
    pub fn all() -> impl Iterator<Item = Gpr> {
        (0..16).map(Gpr)
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            12 => f.write_str("ap"),
            13 => f.write_str("fp"),
            14 => f.write_str("sp"),
            15 => f.write_str("pc"),
            n => write!(f, "r{n}"),
        }
    }
}

impl From<Gpr> for usize {
    fn from(g: Gpr) -> usize {
        g.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_have_expected_indices() {
        assert_eq!(Gpr::AP.index(), 12);
        assert_eq!(Gpr::FP.index(), 13);
        assert_eq!(Gpr::SP.index(), 14);
        assert_eq!(Gpr::PC.index(), 15);
    }

    #[test]
    fn from_nibble_masks_high_bits() {
        assert_eq!(Gpr::from_nibble(0xAB).index(), 0xB);
        assert_eq!(Gpr::from_nibble(0x05).index(), 5);
    }

    #[test]
    fn display_names() {
        assert_eq!(Gpr::new(0).to_string(), "r0");
        assert_eq!(Gpr::new(11).to_string(), "r11");
        assert_eq!(Gpr::new(12).to_string(), "ap");
        assert_eq!(Gpr::new(13).to_string(), "fp");
        assert_eq!(Gpr::new(14).to_string(), "sp");
        assert_eq!(Gpr::new(15).to_string(), "pc");
    }

    #[test]
    fn predicates() {
        assert!(Gpr::PC.is_pc());
        assert!(!Gpr::SP.is_pc());
        assert!(Gpr::SP.is_sp());
        assert!(!Gpr::PC.is_sp());
    }

    #[test]
    fn all_yields_sixteen() {
        let v: Vec<_> = Gpr::all().collect();
        assert_eq!(v.len(), 16);
        assert_eq!(v[0], Gpr::new(0));
        assert_eq!(v[15], Gpr::PC);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Gpr::new(16);
    }
}
