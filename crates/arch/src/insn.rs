//! Architectural instruction decoding.
//!
//! [`DecodedInsn::decode`] pulls one whole instruction out of a byte stream
//! and produces a structured representation. The micro-engine does **not**
//! use this — it decodes specifier-by-specifier in microcode, which is the
//! point of the exercise — but the disassembler, the assembler's tests and
//! the architectural oracle simulator in `atum-baselines` all do, giving us
//! an independent second implementation of the encoding to check the
//! microcode against.

use crate::mode::{Access, AddrMode, DataSize};
use crate::opcode::Opcode;
use crate::reg::Gpr;
use std::fmt;

/// A decoded operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// 6-bit short literal.
    Literal(u8),
    /// Immediate constant (`(pc)+` autoincrement), already masked to size.
    Immediate(u32),
    /// Absolute address (`@(pc)+`).
    Absolute(u32),
    /// Register operand.
    Register(Gpr),
    /// `(Rn)`.
    RegDeferred(Gpr),
    /// `-(Rn)`.
    AutoDec(Gpr),
    /// `(Rn)+`.
    AutoInc(Gpr),
    /// `@(Rn)+`.
    AutoIncDeferred(Gpr),
    /// PC-relative operand, resolved at decode time to its absolute
    /// target (the base is the address after the displacement bytes).
    Relative(u32),
    /// PC-relative deferred operand: the resolved address of a longword
    /// holding the operand's address.
    RelativeDeferred(u32),
    /// `disp(Rn)` — displacement plus register (never the PC; PC forms
    /// resolve to [`Operand::Relative`]).
    Displacement {
        /// Sign-extended displacement.
        disp: i32,
        /// Base register.
        reg: Gpr,
        /// Encoded displacement width.
        width: DataSize,
    },
    /// `@disp(Rn)`.
    DisplacementDeferred {
        /// Sign-extended displacement.
        disp: i32,
        /// Base register.
        reg: Gpr,
        /// Encoded displacement width.
        width: DataSize,
    },
    /// A branch displacement; the payload is the sign-extended displacement
    /// from the address following the displacement field.
    BranchDisp(i32),
}

/// A fully decoded instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedInsn {
    /// The opcode.
    pub opcode: Opcode,
    /// Decoded operands, in instruction-stream order.
    pub operands: Vec<Operand>,
    /// Total encoded length in bytes.
    pub len: u32,
}

/// Errors from instruction decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte is unassigned.
    BadOpcode(u8),
    /// A specifier used a reserved addressing mode.
    ReservedMode(u8),
    /// A mode that cannot be used for this access type (e.g. literal or
    /// immediate as a write destination, register mode for an address
    /// operand).
    InvalidForAccess(AddrMode, Access),
    /// The byte source ran out mid-instruction.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "unassigned opcode byte {b:#04x}"),
            DecodeError::ReservedMode(s) => {
                write!(f, "reserved addressing mode in specifier {s:#04x}")
            }
            DecodeError::InvalidForAccess(mode, access) => {
                write!(f, "{mode} mode invalid for {access:?} access")
            }
            DecodeError::Truncated => f.write_str("instruction truncated"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Pulls little-endian integers off a fallible byte source.
struct Cursor<'a, F: FnMut(u32) -> Option<u8>> {
    fetch: &'a mut F,
    addr: u32,
    start: u32,
}

impl<F: FnMut(u32) -> Option<u8>> Cursor<'_, F> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = (self.fetch)(self.addr).ok_or(DecodeError::Truncated)?;
        self.addr = self.addr.wrapping_add(1);
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let lo = self.u8()? as u16;
        let hi = self.u8()? as u16;
        Ok(lo | (hi << 8))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let lo = self.u16()? as u32;
        let hi = self.u16()? as u32;
        Ok(lo | (hi << 16))
    }

    fn sized(&mut self, size: DataSize) -> Result<u32, DecodeError> {
        Ok(match size {
            DataSize::Byte => self.u8()? as u32,
            DataSize::Word => self.u16()? as u32,
            DataSize::Long => self.u32()?,
        })
    }

    fn consumed(&self) -> u32 {
        self.addr.wrapping_sub(self.start)
    }
}

impl DecodedInsn {
    /// Decodes one instruction starting at `addr`, fetching bytes through
    /// `fetch` (which returns `None` past the end of the stream).
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`]; the machine maps these onto reserved-instruction
    /// / reserved-addressing-mode faults.
    pub fn decode<F>(addr: u32, fetch: &mut F) -> Result<DecodedInsn, DecodeError>
    where
        F: FnMut(u32) -> Option<u8>,
    {
        let mut cur = Cursor {
            fetch,
            addr,
            start: addr,
        };
        let opbyte = cur.u8()?;
        let opcode = Opcode::from_byte(opbyte).ok_or(DecodeError::BadOpcode(opbyte))?;
        let mut operands = Vec::with_capacity(opcode.operands().len());
        for spec in opcode.operands() {
            match spec.access {
                Access::Branch(width) => {
                    let raw = cur.sized(width)?;
                    operands.push(Operand::BranchDisp(width.sign_extend(raw) as i32));
                }
                access => {
                    operands.push(Self::decode_specifier(&mut cur, access, spec.size)?);
                }
            }
        }
        Ok(DecodedInsn {
            opcode,
            operands,
            len: cur.consumed(),
        })
    }

    fn decode_specifier<F>(
        cur: &mut Cursor<'_, F>,
        access: Access,
        size: DataSize,
    ) -> Result<Operand, DecodeError>
    where
        F: FnMut(u32) -> Option<u8>,
    {
        let spec = cur.u8()?;
        let (mode, reg_n) =
            AddrMode::decode_specifier(spec).map_err(|e| DecodeError::ReservedMode(e.specifier))?;
        let reg = Gpr::from_nibble(reg_n);
        let writable = matches!(access, Access::Write | Access::Modify);
        let op = match mode {
            AddrMode::Literal => {
                if writable || access == Access::Address {
                    return Err(DecodeError::InvalidForAccess(mode, access));
                }
                Operand::Literal(spec & 0x3F)
            }
            AddrMode::Register => {
                if access == Access::Address || reg.is_pc() {
                    return Err(DecodeError::InvalidForAccess(mode, access));
                }
                Operand::Register(reg)
            }
            AddrMode::RegDeferred => {
                if reg.is_pc() {
                    return Err(DecodeError::InvalidForAccess(mode, access));
                }
                Operand::RegDeferred(reg)
            }
            AddrMode::AutoDec => {
                if reg.is_pc() {
                    return Err(DecodeError::InvalidForAccess(mode, access));
                }
                Operand::AutoDec(reg)
            }
            AddrMode::AutoInc => {
                if reg.is_pc() {
                    if writable || access == Access::Address {
                        return Err(DecodeError::InvalidForAccess(mode, access));
                    }
                    Operand::Immediate(cur.sized(size)?)
                } else {
                    Operand::AutoInc(reg)
                }
            }
            AddrMode::AutoIncDeferred => {
                if reg.is_pc() {
                    Operand::Absolute(cur.u32()?)
                } else {
                    Operand::AutoIncDeferred(reg)
                }
            }
            AddrMode::Displacement(width) => {
                let raw = cur.sized(width)?;
                let disp = width.sign_extend(raw) as i32;
                if reg.is_pc() {
                    Operand::Relative(cur.addr.wrapping_add(disp as u32))
                } else {
                    Operand::Displacement { disp, reg, width }
                }
            }
            AddrMode::DisplacementDeferred(width) => {
                let raw = cur.sized(width)?;
                let disp = width.sign_extend(raw) as i32;
                if reg.is_pc() {
                    Operand::RelativeDeferred(cur.addr.wrapping_add(disp as u32))
                } else {
                    Operand::DisplacementDeferred { disp, reg, width }
                }
            }
        };
        Ok(op)
    }
}

impl fmt::Display for DecodedInsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.opcode.mnemonic())?;
        for (i, op) in self.operands.iter().enumerate() {
            f.write_str(if i == 0 { " " } else { ", " })?;
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Operand::Literal(v) => write!(f, "#{v}"),
            Operand::Immediate(v) => write!(f, "#{:#x}", v),
            Operand::Absolute(a) => write!(f, "@#{a:#x}"),
            Operand::Register(r) => write!(f, "{r}"),
            Operand::RegDeferred(r) => write!(f, "({r})"),
            Operand::AutoDec(r) => write!(f, "-({r})"),
            Operand::AutoInc(r) => write!(f, "({r})+"),
            Operand::AutoIncDeferred(r) => write!(f, "@({r})+"),
            Operand::Relative(a) => write!(f, "{a:#x}"),
            Operand::RelativeDeferred(a) => write!(f, "@{a:#x}"),
            Operand::Displacement { disp, reg, .. } => write!(f, "{disp}({reg})"),
            Operand::DisplacementDeferred { disp, reg, .. } => write!(f, "@{disp}({reg})"),
            Operand::BranchDisp(d) => write!(f, ".{:+}", d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode(bytes: &[u8]) -> Result<DecodedInsn, DecodeError> {
        let mut fetch = |a: u32| bytes.get(a as usize).copied();
        DecodedInsn::decode(0, &mut fetch)
    }

    #[test]
    fn decode_movl_register_to_register() {
        // movl r1, r2
        let insn = decode(&[Opcode::Movl.to_byte(), 0x51, 0x52]).unwrap();
        assert_eq!(insn.opcode, Opcode::Movl);
        assert_eq!(
            insn.operands,
            vec![
                Operand::Register(Gpr::new(1)),
                Operand::Register(Gpr::new(2))
            ]
        );
        assert_eq!(insn.len, 3);
        assert_eq!(insn.to_string(), "movl r1, r2");
    }

    #[test]
    fn decode_short_literal() {
        // movl #63, r0
        let insn = decode(&[Opcode::Movl.to_byte(), 0x3F, 0x50]).unwrap();
        assert_eq!(insn.operands[0], Operand::Literal(63));
    }

    #[test]
    fn decode_immediate_long() {
        // movl #0x11223344, r0  (immediate = (pc)+ = specifier 0x8F)
        let insn = decode(&[Opcode::Movl.to_byte(), 0x8F, 0x44, 0x33, 0x22, 0x11, 0x50]).unwrap();
        assert_eq!(insn.operands[0], Operand::Immediate(0x1122_3344));
        assert_eq!(insn.len, 7);
    }

    #[test]
    fn decode_immediate_byte_width() {
        // movb #0x7F, r0 — immediate is one byte for byte operands.
        let insn = decode(&[Opcode::Movb.to_byte(), 0x8F, 0x7F, 0x50]).unwrap();
        assert_eq!(insn.operands[0], Operand::Immediate(0x7F));
        assert_eq!(insn.len, 4);
    }

    #[test]
    fn decode_absolute() {
        // tstl @#0x80000200
        let insn = decode(&[Opcode::Tstl.to_byte(), 0x9F, 0x00, 0x02, 0x00, 0x80]).unwrap();
        assert_eq!(insn.operands[0], Operand::Absolute(0x8000_0200));
    }

    #[test]
    fn decode_displacement_widths() {
        // movl -4(r3), r0 — byte displacement
        let insn = decode(&[Opcode::Movl.to_byte(), 0xA3, 0xFC, 0x50]).unwrap();
        assert_eq!(
            insn.operands[0],
            Operand::Displacement {
                disp: -4,
                reg: Gpr::new(3),
                width: DataSize::Byte
            }
        );
        // movl 0x1234(r3), r0 — word displacement
        let insn = decode(&[Opcode::Movl.to_byte(), 0xC3, 0x34, 0x12, 0x50]).unwrap();
        assert_eq!(
            insn.operands[0],
            Operand::Displacement {
                disp: 0x1234,
                reg: Gpr::new(3),
                width: DataSize::Word
            }
        );
    }

    #[test]
    fn decode_branch_displacement() {
        let insn = decode(&[Opcode::Brb.to_byte(), 0xFE]).unwrap();
        assert_eq!(insn.operands[0], Operand::BranchDisp(-2));
        let insn = decode(&[Opcode::Brw.to_byte(), 0x00, 0x10]).unwrap();
        assert_eq!(insn.operands[0], Operand::BranchDisp(0x1000));
    }

    #[test]
    fn decode_sobgtr_operand_order() {
        // sobgtr r5, .-3
        let insn = decode(&[Opcode::Sobgtr.to_byte(), 0x55, 0xFD]).unwrap();
        assert_eq!(insn.operands.len(), 2);
        assert_eq!(insn.operands[0], Operand::Register(Gpr::new(5)));
        assert_eq!(insn.operands[1], Operand::BranchDisp(-3));
    }

    #[test]
    fn literal_as_destination_is_invalid() {
        // movl r0, #5
        let err = decode(&[Opcode::Movl.to_byte(), 0x50, 0x05]).unwrap_err();
        assert!(matches!(err, DecodeError::InvalidForAccess(..)));
    }

    #[test]
    fn register_mode_for_address_operand_is_invalid() {
        // jmp r3 — jump needs an address, register mode has none.
        let err = decode(&[Opcode::Jmp.to_byte(), 0x53]).unwrap_err();
        assert!(matches!(err, DecodeError::InvalidForAccess(..)));
    }

    #[test]
    fn pc_in_register_mode_is_invalid() {
        let err = decode(&[Opcode::Tstl.to_byte(), 0x5F]).unwrap_err();
        assert!(matches!(err, DecodeError::InvalidForAccess(..)));
    }

    #[test]
    fn bad_opcode() {
        assert_eq!(decode(&[0xFF]).unwrap_err(), DecodeError::BadOpcode(0xFF));
    }

    #[test]
    fn truncated_stream() {
        assert_eq!(
            decode(&[Opcode::Movl.to_byte(), 0x8F, 0x01]).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn reserved_mode_surfaces() {
        let err = decode(&[Opcode::Tstl.to_byte(), 0x42]).unwrap_err();
        assert_eq!(err, DecodeError::ReservedMode(0x42));
    }
}
