//! Property tests on the architecture definitions: field encodings are
//! lossless and decoders are total over their domains.

use atum_arch::{CpuMode, DataSize, Opcode, Psl, Pte, VirtAddr, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn psl_image_round_trips(bits in any::<u32>()) {
        let psl = Psl::from_bits(bits);
        prop_assert_eq!(Psl::from_bits(psl.bits()), psl);
        // Rebuilding from the accessors preserves every field. (Raw bits
        // may differ: SVX collapses the VAX's executive/supervisor mode
        // encodings onto user mode, deliberately.)
        let mut rebuilt = Psl::new();
        rebuilt.set_ipl(psl.ipl());
        rebuilt.set_mode(psl.mode());
        rebuilt.set_prev_mode(psl.prev_mode());
        rebuilt.set_cc(psl.n(), psl.z(), psl.v(), psl.c());
        rebuilt.set_t(psl.t());
        rebuilt.set_tp(psl.tp());
        prop_assert_eq!(rebuilt.ipl(), psl.ipl());
        prop_assert_eq!(rebuilt.mode(), psl.mode());
        prop_assert_eq!(rebuilt.prev_mode(), psl.prev_mode());
        prop_assert_eq!(
            (rebuilt.n(), rebuilt.z(), rebuilt.v(), rebuilt.c(), rebuilt.t(), rebuilt.tp()),
            (psl.n(), psl.z(), psl.v(), psl.c(), psl.t(), psl.tp())
        );
        // Canonical images are fixed points.
        prop_assert_eq!(Psl::from_bits(rebuilt.bits()).bits(), rebuilt.bits());
    }

    #[test]
    fn psl_field_writes_are_independent(ipl in 0u8..32, n in any::<bool>(), z in any::<bool>()) {
        let mut psl = Psl::new();
        psl.set_mode(CpuMode::User);
        psl.set_ipl(ipl);
        psl.set_n(n);
        psl.set_z(z);
        prop_assert_eq!(psl.ipl(), ipl);
        prop_assert_eq!(psl.mode(), CpuMode::User);
        prop_assert_eq!(psl.n(), n);
        prop_assert_eq!(psl.z(), z);
    }

    #[test]
    fn virt_addr_decomposition_recomposes(va in any::<u32>()) {
        let v = VirtAddr(va);
        let rebuilt = v.region().base() + v.vpn() * PAGE_SIZE + v.offset();
        prop_assert_eq!(rebuilt, va);
        prop_assert_eq!(v.page_base().0 + v.offset(), va);
        prop_assert_eq!(v.global_vpn(), va >> 9);
    }

    #[test]
    fn pte_fields_round_trip(pfn in 0u32..(1 << 21), prot in 0u32..4) {
        let prot = atum_arch::PageProt::from_bits(prot);
        let pte = Pte::new(pfn, prot);
        prop_assert!(pte.valid());
        prop_assert_eq!(pte.pfn(), pfn);
        prop_assert_eq!(pte.prot(), prot);
        prop_assert_eq!(pte.frame_base(), pfn << 9);
        prop_assert!(pte.with_modified().modified());
        prop_assert_eq!(pte.with_modified().pfn(), pfn);
    }

    #[test]
    fn sign_extension_is_idempotent(v in any::<u32>()) {
        for size in [DataSize::Byte, DataSize::Word, DataSize::Long] {
            let once = size.sign_extend(v);
            prop_assert_eq!(size.sign_extend(once & size.mask()), once);
            prop_assert_eq!(once & size.mask(), v & size.mask());
        }
    }

    #[test]
    fn opcode_decode_is_total_and_consistent(byte in any::<u8>()) {
        match Opcode::from_byte(byte) {
            Some(op) => {
                prop_assert_eq!(op.to_byte(), byte);
                prop_assert!(!op.mnemonic().is_empty());
                prop_assert!(op.operands().len() <= 4);
            }
            None => {
                // Unassigned bytes never collide with a defined opcode.
                prop_assert!(Opcode::ALL.iter().all(|o| o.to_byte() != byte));
            }
        }
    }

    #[test]
    fn exception_vectors_stay_in_the_scb_page(code in any::<u16>()) {
        use atum_arch::Exception;
        let excs = [
            Exception::ReservedInstruction,
            Exception::Chmk(code),
            Exception::TranslationInvalid(VirtAddr(code as u32)),
            Exception::TraceTrap,
        ];
        for e in excs {
            prop_assert!(e.vector() < PAGE_SIZE);
            prop_assert_eq!(e.vector() % 4, 0);
        }
    }
}
