//! # atum-ucode — the SVX micro-architecture
//!
//! SVX is executed by a vertical micro-engine: every architectural
//! instruction, operand-specifier decode, exception entry and context
//! switch is a sequence of [`MicroOp`]s held in a [`ControlStore`]. The
//! engine itself (the datapath) lives in `atum-machine`; this crate defines
//! the micro-instruction set, the micro-assembler, the control store with
//! its **writable-control-store patch API**, and the stock microcode.
//!
//! The patch API is the load-bearing piece of the whole reproduction: the
//! ATUM tracer in `atum-core` is nothing but a set of micro-routines
//! appended to the control store plus re-pointed [`Entry`] slots and
//! dispatch-table entries — exactly what Agarwal, Sites and Horowitz did to
//! the VAX 8200's control store. No Rust-level callback is involved in
//! tracing; an unpatched machine cannot observe the tracer because the
//! tracer does not exist in its control store.
//!
//! ## Structure
//!
//! * [`uop`] — micro-operations, micro-registers, conditions, ALU ops.
//! * [`store`] — the control store: micro-words, entry-point table,
//!   opcode/specifier dispatch tables, and patching.
//! * [`masm`] — a label-based micro-assembler for building routines.
//! * [`stock`] — the shipped microcode implementing all of SVX.
//!
//! ## Example: inspecting and patching
//!
//! ```
//! use atum_ucode::{stock, Entry, MicroOp, Target};
//!
//! let mut cs = stock::build();
//! let stock_read = cs.entry(Entry::XferRead);
//!
//! // Install a (useless) patch: a routine that just tail-jumps to the
//! // stock read path, the way the ATUM patches chain to the original.
//! let patch = cs.append_routine("demo.patch", vec![
//!     MicroOp::Jump(Target::Abs(stock_read)),
//! ]);
//! cs.set_entry(Entry::XferRead, patch);
//! assert_eq!(cs.entry(Entry::XferRead), patch);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
mod listing;
pub mod masm;
pub mod stock;
pub mod store;
pub mod uop;

pub use masm::MicroAsm;
pub use store::ControlStore;
pub use uop::{
    AluOp, CcEffect, Entry, FaultKind, MicroCond, MicroOp, MicroReg, RefClass, SizeSel, SpecTable,
    Target,
};
