//! The micro-cycle cost model, shared by the execution engines and the
//! static cost pass in `atum-mclint`.
//!
//! The model mirrors a vertical micro-engine with a one-cycle datapath:
//! every micro-op spends [`BASE`] cycle at dispatch, memory transfers
//! (`Read`/`Write`/`PhysRead`/`PhysWrite`) spend [`MEM_EXTRA`] more in the
//! memory interface, and each page-table-entry read performed by address
//! translation adds [`PTE_READ`] on top of the op that triggered the walk.
//!
//! Both engines in `atum-machine` (the reference interpreter and the
//! predecoded fast engine) charge cycles exclusively through these
//! constants, and `atum-mclint`'s cost pass sums [`op_cost`] over
//! control-store paths — so a static bound proved by the lint is a bound
//! on what the engines actually report, with translation walks as the only
//! dynamic (per-walk, not per-path) term.

use crate::uop::MicroOp;

/// Cycles charged at dispatch for every micro-op.
pub const BASE: u64 = 1;

/// Additional cycles charged by the memory interface for each
/// `Read`/`Write`/`PhysRead`/`PhysWrite` micro-op.
pub const MEM_EXTRA: u64 = 1;

/// Cycles charged per page-table-entry read during address translation
/// (on top of the memory micro-op that required the walk).
pub const PTE_READ: u64 = 2;

/// Whether a micro-op touches the memory interface (and therefore costs
/// [`MEM_EXTRA`] beyond [`BASE`]).
pub fn is_mem_op(op: &MicroOp) -> bool {
    matches!(
        op,
        MicroOp::Read { .. } | MicroOp::Write { .. } | MicroOp::PhysRead | MicroOp::PhysWrite
    )
}

/// The translation-independent cost of one micro-op: [`BASE`], plus
/// [`MEM_EXTRA`] for memory transfers. PTE-walk cycles are a dynamic
/// property of the TLB state and are *not* included; static analysis must
/// account for them separately (or bound them by the worst-case walk).
pub fn op_cost(op: &MicroOp) -> u64 {
    BASE + if is_mem_op(op) { MEM_EXTRA } else { 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::{MicroReg, RefClass, SizeSel, Target};

    #[test]
    fn mem_ops_cost_two_cycles() {
        assert_eq!(
            op_cost(&MicroOp::Read {
                class: RefClass::DataRead,
                size: SizeSel::OSize,
            }),
            BASE + MEM_EXTRA
        );
        assert_eq!(
            op_cost(&MicroOp::Write {
                size: SizeSel::OSize
            }),
            2
        );
        assert_eq!(op_cost(&MicroOp::PhysRead), 2);
        assert_eq!(op_cost(&MicroOp::PhysWrite), 2);
    }

    #[test]
    fn non_mem_ops_cost_one_cycle() {
        for op in [
            MicroOp::Mov {
                src: MicroReg::T(0),
                dst: MicroReg::T(1),
            },
            MicroOp::Jump(Target::Abs(0)),
            MicroOp::Ret,
            MicroOp::DecodeNext,
            MicroOp::Halt,
        ] {
            assert_eq!(op_cost(&op), BASE, "{op:?}");
        }
    }
}
