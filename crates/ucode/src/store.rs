//! The control store: micro-words plus the dispatch structures, with the
//! writable-control-store (WCS) patch API.
//!
//! A real 8200 divided its control store into a ROM region and a writable
//! region the console could load; ATUM's patches lived in the writable
//! part and re-routed a handful of ROM entry points. Here the whole store
//! is one `Vec<MicroOp>` with three patchable indirection structures:
//!
//! 1. the **entry table** ([`Entry`] slots) — read by `Target::Entry`
//!    jumps/calls at execution time;
//! 2. the **opcode dispatch table** (256 slots) — used by
//!    [`MicroOp::DispatchOpcode`];
//! 3. the **specifier dispatch tables** (4 × 16 slots) — used by
//!    [`MicroOp::DispatchSpec`].
//!
//! [`ControlStore::append_routine`] plays the role of loading micro-words
//! into the WCS; the `set_*` methods re-point the indirections.

use crate::uop::{Entry, MicroOp, SpecTable};
use std::collections::HashMap;
use std::fmt;

/// The control store.
#[derive(Debug, Clone)]
pub struct ControlStore {
    words: Vec<MicroOp>,
    entries: [u32; Entry::COUNT],
    opcode_table: [u32; 256],
    spec_tables: [[u32; 16]; SpecTable::COUNT],
    symbols: HashMap<String, u32>,
    /// Address of the stock "reserved instruction" fault routine; unset
    /// dispatch slots point here.
    fault_addr: u32,
    /// Length of the stock portion (everything appended later is "WCS").
    stock_len: u32,
    /// Mutation counter: bumped by every operation that can change what
    /// the sequencer would execute (word appends, entry/dispatch
    /// repointing, sealing). Engines that predecode the store key their
    /// caches on this value and rebuild when it moves.
    version: u64,
}

impl ControlStore {
    /// Creates an empty store whose dispatch slots all point at micro-word
    /// 0 (builders overwrite everything; see [`crate::stock::build`]).
    pub fn new() -> ControlStore {
        ControlStore {
            words: Vec::new(),
            entries: [0; Entry::COUNT],
            opcode_table: [0; 256],
            spec_tables: [[0; 16]; SpecTable::COUNT],
            symbols: HashMap::new(),
            fault_addr: 0,
            stock_len: 0,
            version: 0,
        }
    }

    /// The store's mutation counter. Any change that could alter execution
    /// (appending words, repointing an entry or dispatch slot, sealing)
    /// increments it; two reads returning the same value bracket a span in
    /// which predecoded views of the store remain valid.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The micro-word at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the store (a real sequencer would fetch
    /// garbage; the simulator prefers to fail loudly).
    pub fn word(&self, addr: u32) -> MicroOp {
        self.words[addr as usize]
    }

    /// All micro-words as a slice (predecoders and verifiers walk this
    /// instead of calling [`ControlStore::word`] per address).
    pub fn words(&self) -> &[MicroOp] {
        &self.words
    }

    /// Number of micro-words.
    pub fn len(&self) -> u32 {
        self.words.len() as u32
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of micro-words in the stock (pre-patch) portion.
    pub fn stock_len(&self) -> u32 {
        self.stock_len
    }

    /// Number of micro-words appended after the stock build — the patch
    /// footprint, one of the quantities the paper reports.
    pub fn patch_words(&self) -> u32 {
        self.len() - self.stock_len
    }

    /// The address an [`Entry`] slot points at.
    pub fn entry(&self, e: Entry) -> u32 {
        self.entries[e.index()]
    }

    /// Re-points an [`Entry`] slot (the patch operation).
    pub fn set_entry(&mut self, e: Entry, addr: u32) {
        assert!(addr < self.len(), "entry target {addr} out of store");
        self.entries[e.index()] = addr;
        self.version += 1;
    }

    /// The opcode dispatch target for an opcode byte.
    pub fn opcode_target(&self, opcode: u8) -> u32 {
        self.opcode_table[opcode as usize]
    }

    /// Re-points an opcode dispatch slot.
    pub fn set_opcode_target(&mut self, opcode: u8, addr: u32) {
        assert!(addr < self.len(), "dispatch target {addr} out of store");
        self.opcode_table[opcode as usize] = addr;
        self.version += 1;
    }

    /// The specifier dispatch target for a mode nibble.
    pub fn spec_target(&self, table: SpecTable, nibble: u8) -> u32 {
        self.spec_tables[table.index()][(nibble & 0xF) as usize]
    }

    /// Re-points a specifier dispatch slot.
    pub fn set_spec_target(&mut self, table: SpecTable, nibble: u8, addr: u32) {
        assert!(addr < self.len(), "dispatch target {addr} out of store");
        self.spec_tables[table.index()][(nibble & 0xF) as usize] = addr;
        self.version += 1;
    }

    /// Appends a routine to the store (the WCS load) and records `name` in
    /// the symbol table. Returns the routine's address.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty or `name` is already defined.
    pub fn append_routine(&mut self, name: &str, words: Vec<MicroOp>) -> u32 {
        assert!(!words.is_empty(), "empty micro-routine {name}");
        let addr = self.len();
        assert!(
            self.symbols.insert(name.to_string(), addr).is_none(),
            "duplicate micro-symbol {name}"
        );
        self.words.extend(words);
        self.version += 1;
        addr
    }

    /// Looks up a micro-symbol.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All micro-symbols (for listings and tests).
    pub fn symbols(&self) -> &HashMap<String, u32> {
        &self.symbols
    }

    /// The reserved-instruction fault routine's address.
    pub fn fault_addr(&self) -> u32 {
        self.fault_addr
    }

    /// Marks everything currently in the store as the stock (pre-patch)
    /// region, leaving the dispatch structures as they are. The shipped
    /// microcode is sealed through the richer internal path in
    /// [`crate::stock::build`]; this method exists for alternative stock
    /// builders and for verifier tests that need a synthetic store with a
    /// non-empty stock region.
    pub fn seal_stock(&mut self) {
        self.stock_len = self.len();
        self.version += 1;
    }

    pub(crate) fn finish_stock(
        &mut self,
        fault_addr: u32,
        entries: [u32; Entry::COUNT],
        opcode_table: [u32; 256],
        spec_tables: [[u32; 16]; SpecTable::COUNT],
    ) {
        self.fault_addr = fault_addr;
        self.entries = entries;
        self.opcode_table = opcode_table;
        self.spec_tables = spec_tables;
        self.stock_len = self.len();
        self.version += 1;
    }

    pub(crate) fn raw_append(&mut self, words: Vec<MicroOp>) {
        self.words.extend(words);
        self.version += 1;
    }

    pub(crate) fn define_symbol(&mut self, name: String, addr: u32) {
        assert!(
            self.symbols.insert(name.clone(), addr).is_none(),
            "duplicate micro-symbol {name}"
        );
    }
}

impl Default for ControlStore {
    fn default() -> ControlStore {
        ControlStore::new()
    }
}

impl fmt::Display for ControlStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "control store: {} micro-words ({} stock + {} patch), {} symbols",
            self.len(),
            self.stock_len(),
            self.patch_words(),
            self.symbols.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::Target;

    #[test]
    fn append_and_lookup() {
        let mut cs = ControlStore::new();
        let a = cs.append_routine("one", vec![MicroOp::Halt]);
        let b = cs.append_routine("two", vec![MicroOp::Ret, MicroOp::Halt]);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(cs.symbol("one"), Some(0));
        assert_eq!(cs.symbol("two"), Some(1));
        assert_eq!(cs.word(1), MicroOp::Ret);
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn patch_words_counts_post_stock_appends() {
        let mut cs = ControlStore::new();
        cs.append_routine("stockish", vec![MicroOp::Halt]);
        cs.finish_stock(0, [0; Entry::COUNT], [0; 256], [[0; 16]; 4]);
        assert_eq!(cs.patch_words(), 0);
        cs.append_routine("patch", vec![MicroOp::Ret, MicroOp::Ret]);
        assert_eq!(cs.patch_words(), 2);
        assert_eq!(cs.stock_len(), 1);
    }

    #[test]
    fn entry_repointing() {
        let mut cs = ControlStore::new();
        cs.append_routine("a", vec![MicroOp::Halt, MicroOp::Halt]);
        cs.set_entry(Entry::XferRead, 1);
        assert_eq!(cs.entry(Entry::XferRead), 1);
    }

    #[test]
    #[should_panic(expected = "out of store")]
    fn entry_out_of_range_panics() {
        let mut cs = ControlStore::new();
        cs.append_routine("a", vec![MicroOp::Halt]);
        cs.set_entry(Entry::Fetch, 5);
    }

    #[test]
    #[should_panic(expected = "duplicate micro-symbol")]
    fn duplicate_symbol_panics() {
        let mut cs = ControlStore::new();
        cs.append_routine("x", vec![MicroOp::Halt]);
        cs.append_routine("x", vec![MicroOp::Halt]);
    }

    #[test]
    #[should_panic(expected = "out of store")]
    fn opcode_target_out_of_range_panics() {
        let mut cs = ControlStore::new();
        cs.append_routine("a", vec![MicroOp::Halt]);
        cs.set_opcode_target(0x12, 1);
    }

    #[test]
    #[should_panic(expected = "out of store")]
    fn spec_target_out_of_range_panics() {
        let mut cs = ControlStore::new();
        cs.append_routine("a", vec![MicroOp::Halt]);
        cs.set_spec_target(SpecTable::Read, 3, 7);
    }

    #[test]
    #[should_panic(expected = "empty micro-routine")]
    fn empty_routine_panics() {
        let mut cs = ControlStore::new();
        cs.append_routine("nothing", vec![]);
    }

    #[test]
    fn patch_words_accumulates_across_appends() {
        let mut cs = ControlStore::new();
        cs.append_routine("stockish", vec![MicroOp::Halt]);
        cs.seal_stock();
        cs.append_routine("patch.a", vec![MicroOp::Ret, MicroOp::Ret]);
        cs.append_routine("patch.b", vec![MicroOp::Ret]);
        assert_eq!(cs.patch_words(), 3);
        assert_eq!(cs.stock_len(), 1);
        // Re-sealing adopts the patches into the stock region.
        cs.seal_stock();
        assert_eq!(cs.patch_words(), 0);
        assert_eq!(cs.stock_len(), 4);
    }

    #[test]
    fn dispatch_tables() {
        let mut cs = ControlStore::new();
        cs.append_routine("a", vec![MicroOp::Jump(Target::Abs(0)), MicroOp::Halt]);
        cs.set_opcode_target(0x12, 1);
        assert_eq!(cs.opcode_target(0x12), 1);
        cs.set_spec_target(SpecTable::Read, 5, 1);
        assert_eq!(cs.spec_target(SpecTable::Read, 5), 1);
        assert_eq!(cs.spec_target(SpecTable::Read, 6), 0);
    }
}
