//! Control-store listings: render micro-code readably, with symbol
//! names, dispatch-table annotations and patch-region marking — the
//! microcode listing a WCS-era machine shipped on microfiche.

use crate::store::ControlStore;
use crate::uop::{Entry, MicroOp, SizeSel, Target};
use std::collections::HashMap;
use std::fmt::Write as _;

impl std::fmt::Display for MicroOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MicroOp::Mov { src, dst } => write!(f, "mov    {src} -> {dst}"),
            MicroOp::Alu {
                op,
                a,
                b,
                dst,
                cc,
                size,
            } => write!(f, "alu.{size} {op:?}({a}, {b}) -> {dst} [cc {cc:?}]"),
            MicroOp::SetSize(s) => write!(f, "size   {s}"),
            MicroOp::SetSizeDyn(r) => write!(f, "size   from {r}"),
            MicroOp::Read { class, size } => {
                let sz = match size {
                    SizeSel::Fixed(s) => s.to_string(),
                    SizeSel::OSize => "osize".to_string(),
                };
                write!(f, "read.{sz} [{class:?}] [mar] -> mdr")
            }
            MicroOp::Write { size } => {
                let sz = match size {
                    SizeSel::Fixed(s) => s.to_string(),
                    SizeSel::OSize => "osize".to_string(),
                };
                write!(f, "write.{sz} mdr -> [mar]")
            }
            MicroOp::PhysRead => write!(f, "phys.read  [mar] -> mdr"),
            MicroOp::PhysWrite => write!(f, "phys.write mdr -> [mar]"),
            MicroOp::Jump(t) => write!(f, "jump   {t:?}"),
            MicroOp::JumpIf { cond, target } => write!(f, "jif    {cond:?} -> {target:?}"),
            MicroOp::Call(t) => write!(f, "call   {t:?}"),
            MicroOp::Ret => write!(f, "ret"),
            MicroOp::DispatchOpcode => write!(f, "dispatch.opcode"),
            MicroOp::DispatchSpec(t) => write!(f, "dispatch.spec {t:?}"),
            MicroOp::DecodeNext => write!(f, "decode.next"),
            MicroOp::AdvancePc => write!(f, "pc++"),
            MicroOp::Fault(k) => write!(f, "fault  {k:?}"),
            MicroOp::ReadPr { num, dst } => write!(f, "mfpr   [{num}] -> {dst}"),
            MicroOp::WritePr { num, src } => write!(f, "mtpr   {src} -> [{num}]"),
            MicroOp::TbFlushAll => write!(f, "tb.flush.all"),
            MicroOp::TbFlushProc => write!(f, "tb.flush.proc"),
            MicroOp::Halt => write!(f, "halt"),
        }
    }
}

impl ControlStore {
    /// Renders a listing of the region `[start, end)`, annotating symbol
    /// entry points, resolving jump targets back to symbol+offset form,
    /// and marking the writable (patch) region.
    pub fn listing(&self, start: u32, end: u32) -> String {
        let end = end.min(self.len());
        // Invert the symbol table for annotation.
        let mut by_addr: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, addr) in self.symbols() {
            by_addr.entry(*addr).or_default().push(name);
        }
        for names in by_addr.values_mut() {
            names.sort_unstable();
        }
        // Sorted symbol starts for target resolution.
        let mut starts: Vec<(u32, &str)> = self
            .symbols()
            .iter()
            .map(|(n, a)| (*a, n.as_str()))
            .collect();
        starts.sort_unstable();
        let resolve = |addr: u32| -> String {
            match starts.binary_search_by_key(&addr, |&(a, _)| a) {
                Ok(i) => starts[i].1.to_string(),
                Err(0) => format!("{addr:#x}"),
                Err(i) => {
                    let (base, name) = starts[i - 1];
                    format!("{name}+{}", addr - base)
                }
            }
        };

        let mut out = String::new();
        for addr in start..end {
            if addr == self.stock_len() {
                out.push_str(";; ─── writable control store (patches) ───\n");
            }
            if let Some(names) = by_addr.get(&addr) {
                for n in names {
                    let _ = writeln!(out, "{n}:");
                }
            }
            let rendered = match self.word(addr) {
                MicroOp::Jump(Target::Abs(t)) => format!("jump   {}", resolve(t)),
                MicroOp::JumpIf {
                    cond,
                    target: Target::Abs(t),
                } => format!("jif    {cond:?} -> {}", resolve(t)),
                MicroOp::Call(Target::Abs(t)) => format!("call   {}", resolve(t)),
                MicroOp::Jump(Target::Entry(e)) => format!("jump   entry[{e:?}]"),
                MicroOp::Call(Target::Entry(e)) => format!("call   entry[{e:?}]"),
                other => other.to_string(),
            };
            let _ = writeln!(out, "  {addr:04}  {rendered}");
        }
        out
    }

    /// Renders the listing of one named routine (through the next symbol).
    pub fn listing_of(&self, symbol: &str) -> Option<String> {
        let start = self.symbol(symbol)?;
        let end = self
            .symbols()
            .values()
            .copied()
            .filter(|&a| a > start)
            .min()
            .unwrap_or(self.len());
        Some(self.listing(start, end))
    }

    /// Summarises the entry table (which symbol each hook points at).
    pub fn entry_summary(&self) -> String {
        let mut starts: Vec<(u32, &str)> = self
            .symbols()
            .iter()
            .map(|(n, a)| (*a, n.as_str()))
            .collect();
        starts.sort_unstable();
        let mut out = String::new();
        for e in Entry::ALL {
            let addr = self.entry(e);
            let name = starts
                .iter()
                .rev()
                .find(|&&(a, _)| a <= addr)
                .map(|&(a, n)| {
                    if a == addr {
                        n.to_string()
                    } else {
                        format!("{n}+{}", addr - a)
                    }
                })
                .unwrap_or_else(|| format!("{addr:#x}"));
            let _ = writeln!(out, "{e:?} -> {name} ({addr})");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::stock;

    #[test]
    fn listing_of_xfer_read_is_minimal() {
        let cs = stock::build();
        let l = cs.listing_of("xfer.read").unwrap();
        assert!(l.contains("xfer.read:"), "{l}");
        assert!(l.contains("read."), "{l}");
        assert!(l.contains("ret"), "{l}");
        assert_eq!(l.lines().count(), 3, "entry + two words:\n{l}");
    }

    #[test]
    fn listing_resolves_call_targets_to_symbols() {
        let cs = stock::build();
        let l = cs.listing_of("fetch.insn").unwrap();
        assert!(l.contains("call   ifetch.byte"), "{l}");
        assert!(l.contains("dispatch.opcode"), "{l}");
    }

    #[test]
    fn entry_summary_names_stock_routines() {
        let cs = stock::build();
        let s = cs.entry_summary();
        assert!(s.contains("Fetch -> fetch.insn"), "{s}");
        assert!(s.contains("XferRead -> xfer.read"), "{s}");
    }

    #[test]
    fn full_listing_renders_every_word() {
        let cs = stock::build();
        let l = cs.listing(0, cs.len());
        // One line per word plus symbol lines.
        assert!(l.lines().count() >= cs.len() as usize);
        // Every line with an address parses.
        for line in l.lines().filter(|l| l.starts_with("  ")) {
            let addr: u32 = line.split_whitespace().next().unwrap().parse().unwrap();
            assert!(addr < cs.len());
        }
    }
}
