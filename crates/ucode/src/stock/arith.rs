//! Microcode for moves, conversions, integer arithmetic, logic, and
//! compare/test instructions.

use super::{imm, t, JUNK, SP};
use crate::masm::MicroAsm;
use crate::store::ControlStore;
use crate::uop::{AluOp, CcEffect, Entry, MicroCond, MicroReg};
use atum_arch::{DataSize, Opcode};

/// Builds the routines; returns (opcode, symbol) pairs for dispatch.
pub fn build(cs: &mut ControlStore) -> Vec<(Opcode, &'static str)> {
    let mut out = Vec::new();

    // ── Moves ─────────────────────────────────────────────────────────
    for (op, sym, size) in [
        (Opcode::Movb, "i.movb", DataSize::Byte),
        (Opcode::Movw, "i.movw", DataSize::Word),
        (Opcode::Movl, "i.movl", DataSize::Long),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.set_size(size);
        ua.call("spec.read");
        ua.mov(t(0), t(7));
        ua.alu(AluOp::Pass, imm(0), t(7), JUNK, CcEffect::Logic, size);
        ua.mov(t(7), t(1));
        ua.call("spec.write");
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    // Zero/sign-extending moves and conversions: read at the narrow size,
    // transform, write at the target size.
    for (op, sym, rsize, wsize, alu, cc) in [
        (
            Opcode::Movzbl,
            "i.movzbl",
            DataSize::Byte,
            DataSize::Long,
            Some((AluOp::And, imm(0xFF))),
            CcEffect::Logic,
        ),
        (
            Opcode::Movzwl,
            "i.movzwl",
            DataSize::Word,
            DataSize::Long,
            Some((AluOp::And, imm(0xFFFF))),
            CcEffect::Logic,
        ),
        (
            Opcode::Cvtbl,
            "i.cvtbl",
            DataSize::Byte,
            DataSize::Long,
            Some((AluOp::SextB, imm(0))),
            CcEffect::Logic,
        ),
        (
            Opcode::Cvtwl,
            "i.cvtwl",
            DataSize::Word,
            DataSize::Long,
            Some((AluOp::SextW, imm(0))),
            CcEffect::Logic,
        ),
        (
            Opcode::Mcoml,
            "i.mcoml",
            DataSize::Long,
            DataSize::Long,
            Some((AluOp::Not, imm(0))),
            CcEffect::Logic,
        ),
        (
            Opcode::Mnegl,
            "i.mnegl",
            DataSize::Long,
            DataSize::Long,
            Some((AluOp::Neg, imm(0))),
            CcEffect::Arith,
        ),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.set_size(rsize);
        ua.call("spec.read");
        if let Some((aop, a)) = alu {
            // Unary transforms take the operand as `b`.
            ua.alu(aop, a, t(0), t(7), cc, wsize);
        }
        ua.set_size(wsize);
        ua.mov(t(7), t(1));
        ua.call("spec.write");
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    // cvtlb / cvtlw: truncating conversions; CC at the narrow size.
    for (op, sym, wsize) in [
        (Opcode::Cvtlb, "i.cvtlb", DataSize::Byte),
        (Opcode::Cvtlw, "i.cvtlw", DataSize::Word),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.alu(AluOp::Pass, imm(0), t(0), t(7), CcEffect::Logic, wsize);
        ua.set_size(wsize);
        ua.mov(t(7), t(1));
        ua.call("spec.write");
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    // moval / movab: the address of the operand, stored as a longword.
    for (op, sym, asize) in [
        (Opcode::Moval, "i.moval", DataSize::Long),
        (Opcode::Movab, "i.movab", DataSize::Byte),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.set_size(asize);
        ua.call("spec.addr");
        ua.mov(t(0), t(7));
        ua.alu(
            AluOp::Pass,
            imm(0),
            t(7),
            JUNK,
            CcEffect::Logic,
            DataSize::Long,
        );
        ua.set_size(DataSize::Long);
        ua.mov(t(7), t(1));
        ua.call("spec.write");
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    // pushl / pushal.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.pushl");
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.alu(
            AluOp::Pass,
            imm(0),
            t(0),
            JUNK,
            CcEffect::Logic,
            DataSize::Long,
        );
        ua.mov(t(0), t(1));
        ua.call("stack.push");
        ua.decode_next();
        ua.commit(cs).expect("i.pushl");
        out.push((Opcode::Pushl, "i.pushl"));

        let mut ua = MicroAsm::new();
        ua.global("i.pushal");
        ua.set_size(DataSize::Long);
        ua.call("spec.addr");
        ua.alu(
            AluOp::Pass,
            imm(0),
            t(0),
            JUNK,
            CcEffect::Logic,
            DataSize::Long,
        );
        ua.mov(t(0), t(1));
        ua.call("stack.push");
        ua.decode_next();
        ua.commit(cs).expect("i.pushal");
        out.push((Opcode::Pushal, "i.pushal"));
        let _ = SP;
    }

    // clr family.
    for (op, sym, size) in [
        (Opcode::Clrb, "i.clrb", DataSize::Byte),
        (Opcode::Clrw, "i.clrw", DataSize::Word),
        (Opcode::Clrl, "i.clrl", DataSize::Long),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.set_size(size);
        ua.alu(AluOp::Pass, imm(0), imm(0), t(1), CcEffect::Logic, size);
        ua.call("spec.write");
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    // ── Three-operand arithmetic/logic: op(src1, src2) → dst ──────────
    for (op, sym, aop, cc) in [
        (Opcode::Addl3, "i.addl3", AluOp::Add, CcEffect::Arith),
        (Opcode::Subl3, "i.subl3", AluOp::RSub, CcEffect::Arith),
        (Opcode::Mull3, "i.mull3", AluOp::Mul, CcEffect::Arith),
        (Opcode::Xorl3, "i.xorl3", AluOp::Xor, CcEffect::Logic),
        (Opcode::Bisl3, "i.bisl3", AluOp::Or, CcEffect::Logic),
        (Opcode::Bicl3, "i.bicl3", AluOp::BicR, CcEffect::Logic),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.mov(t(0), t(7));
        ua.call("spec.read");
        ua.alu(aop, t(7), t(0), t(1), cc, DataSize::Long);
        ua.call("spec.write");
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    // ── Two-operand arithmetic/logic: dst ← op(src, dst) ──────────────
    for (op, sym, aop, cc) in [
        (Opcode::Addl2, "i.addl2", AluOp::Add, CcEffect::Arith),
        (Opcode::Subl2, "i.subl2", AluOp::RSub, CcEffect::Arith),
        (Opcode::Mull2, "i.mull2", AluOp::Mul, CcEffect::Arith),
        (Opcode::Xorl2, "i.xorl2", AluOp::Xor, CcEffect::Logic),
        (Opcode::Bisl2, "i.bisl2", AluOp::Or, CcEffect::Logic),
        (Opcode::Bicl2, "i.bicl2", AluOp::BicR, CcEffect::Logic),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.mov(t(0), t(7));
        ua.call("spec.modify");
        ua.alu(aop, t(7), t(0), t(1), cc, DataSize::Long);
        ua.call("spec.writeback");
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    // ── Division (divisor test before any write; see DESIGN.md) ───────
    {
        let mut ua = MicroAsm::new();
        ua.global("i.divl3");
        ua.set_size(DataSize::Long);
        ua.call("spec.read"); // divisor
        ua.mov(t(0), t(7));
        ua.call("spec.read"); // dividend
        ua.mov(t(0), t(8));
        ua.call("spec.modify"); // destination (decoded as modify; doc'd)
        ua.alu(
            AluOp::Div,
            t(7),
            t(8),
            t(1),
            CcEffect::Arith,
            DataSize::Long,
        );
        ua.jif(MicroCond::UDivZero, "cs.div.zero");
        ua.call("spec.writeback");
        ua.decode_next();
        ua.commit(cs).expect("i.divl3");
        out.push((Opcode::Divl3, "i.divl3"));

        let mut ua = MicroAsm::new();
        ua.global("i.divl2");
        ua.set_size(DataSize::Long);
        ua.call("spec.read"); // divisor
        ua.mov(t(0), t(7));
        ua.call("spec.modify"); // dividend/destination
        ua.alu(
            AluOp::Div,
            t(7),
            t(0),
            t(1),
            CcEffect::Arith,
            DataSize::Long,
        );
        ua.jif(MicroCond::UDivZero, "cs.div.zero");
        ua.call("spec.writeback");
        ua.decode_next();
        ua.commit(cs).expect("i.divl2");
        out.push((Opcode::Divl2, "i.divl2"));
    }

    // ── incl / decl ────────────────────────────────────────────────────
    for (op, sym, aop) in [
        (Opcode::Incl, "i.incl", AluOp::Add),
        (Opcode::Decl, "i.decl", AluOp::RSub),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.set_size(DataSize::Long);
        ua.call("spec.modify");
        // incl: T0 + 1; decl: T0 - 1 (RSub with a=1, b=T0).
        ua.alu(aop, imm(1), t(0), t(1), CcEffect::Arith, DataSize::Long);
        ua.call("spec.writeback");
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    // ── ashl cnt.rb, src.rl, dst.wl ────────────────────────────────────
    {
        let mut ua = MicroAsm::new();
        ua.global("i.ashl");
        ua.set_size(DataSize::Byte);
        ua.call("spec.read");
        ua.alu_l(AluOp::SextB, imm(0), t(0), t(7));
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.alu(
            AluOp::Ash,
            t(7),
            t(0),
            t(1),
            CcEffect::Arith,
            DataSize::Long,
        );
        ua.call("spec.write");
        ua.decode_next();
        ua.commit(cs).expect("i.ashl");
        out.push((Opcode::Ashl, "i.ashl"));
    }

    // ── Compares and tests ─────────────────────────────────────────────
    for (op, sym, size) in [
        (Opcode::Cmpb, "i.cmpb", DataSize::Byte),
        (Opcode::Cmpw, "i.cmpw", DataSize::Word),
        (Opcode::Cmpl, "i.cmpl", DataSize::Long),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.set_size(size);
        ua.call("spec.read");
        ua.mov(t(0), t(7));
        ua.call("spec.read");
        ua.alu(AluOp::Sub, t(7), t(0), JUNK, CcEffect::Cmp, size);
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    for (op, sym, size) in [
        (Opcode::Tstb, "i.tstb", DataSize::Byte),
        (Opcode::Tstw, "i.tstw", DataSize::Word),
        (Opcode::Tstl, "i.tstl", DataSize::Long),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.set_size(size);
        ua.call("spec.read");
        ua.alu(AluOp::Pass, imm(0), t(0), JUNK, CcEffect::Test, size);
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    // bitl: AND, set codes, discard.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.bitl");
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.mov(t(0), t(7));
        ua.call("spec.read");
        ua.alu(
            AluOp::And,
            t(7),
            t(0),
            JUNK,
            CcEffect::Logic,
            DataSize::Long,
        );
        ua.decode_next();
        ua.commit(cs).expect("i.bitl");
        out.push((Opcode::Bitl, "i.bitl"));
    }

    let _ = MicroReg::Mdr;
    let _ = Entry::Fetch;
    out
}
