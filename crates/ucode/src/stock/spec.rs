//! Operand-specifier decode microcode.
//!
//! Four entry routines — `spec.read`, `spec.write`, `spec.modify`,
//! `spec.addr` — fetch the specifier byte and dispatch on its mode nibble
//! through per-access-type tables. Effective-address computation is shared
//! (`ea.*` subroutines); the per-table handlers splice in the access
//! semantics (read the datum / store `T1` / build a write-back
//! descriptor / return the address).
//!
//! Results follow the conventions in [the stock module docs](super).

use super::{imm, t, JUNK};
use crate::masm::MicroAsm;
use crate::store::ControlStore;
use crate::uop::{AluOp, Entry, MicroCond, MicroReg, SpecTable};
use atum_arch::DataSize;

/// Builds everything; returns the four dispatch tables indexed
/// `[SpecTable][nibble]`.
pub fn build(cs: &mut ControlStore, _fault: u32) -> [[u32; 16]; SpecTable::COUNT] {
    build_fetch_and_entries(cs);
    build_ea(cs);
    build_handlers(cs);
    build_writeback(cs);
    assemble_tables(cs)
}

fn build_fetch_and_entries(cs: &mut ControlStore) {
    // spec.fetch: Spec ← next istream byte; RegNum ← low nibble.
    let mut ua = MicroAsm::new();
    ua.global("spec.fetch");
    ua.call("ifetch.byte");
    ua.mov(MicroReg::Mdr, MicroReg::Spec);
    ua.alu_l(AluOp::And, MicroReg::Spec, imm(0xF), MicroReg::RegNum);
    ua.ret();
    ua.commit(cs).expect("spec.fetch");

    for (name, table) in [
        ("spec.read", SpecTable::Read),
        ("spec.write", SpecTable::Write),
        ("spec.modify", SpecTable::Modify),
        ("spec.addr", SpecTable::Addr),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(name);
        ua.call("spec.fetch");
        ua.dispatch_spec(table);
        ua.commit(cs).expect(name);
    }
}

/// Effective-address subroutines: EA → `T0`. Clobber `T2`, `T3`, `T13`,
/// `T14`, `T15`, `MDR`; preserve `Spec`/`RegNum`.
fn build_ea(cs: &mut ControlStore) {
    let mut ua = MicroAsm::new();

    ua.global("ea.regd");
    ua.jif(MicroCond::RegNumIsPc, "cs.rsvd.mode");
    ua.mov(MicroReg::GprIdx, t(0));
    ua.ret();

    ua.global("ea.autodec");
    ua.jif(MicroCond::RegNumIsPc, "cs.rsvd.mode");
    ua.alu_l(
        AluOp::Sub,
        MicroReg::GprIdx,
        MicroReg::OSizeBytes,
        MicroReg::GprIdx,
    );
    ua.mov(MicroReg::GprIdx, t(0));
    ua.ret();

    // (Rn)+ — PC case is handled by the per-table handlers.
    ua.global("ea.autoinc");
    ua.mov(MicroReg::GprIdx, t(0));
    ua.alu_l(
        AluOp::Add,
        MicroReg::GprIdx,
        MicroReg::OSizeBytes,
        MicroReg::GprIdx,
    );
    ua.ret();

    // @(Rn)+ — pointer at (Rn), then advance by 4.
    ua.global("ea.autoincd");
    ua.mov(MicroReg::GprIdx, MicroReg::Mar);
    ua.alu_l(AluOp::Add, MicroReg::GprIdx, imm(4), MicroReg::GprIdx);
    ua.call("ptr.read");
    ua.mov(MicroReg::Mdr, t(0));
    ua.ret();

    // @#absolute — longword address from the istream.
    ua.global("ea.abs");
    ua.call("istream.long");
    ua.mov(t(2), t(0));
    ua.ret();

    // Displacement modes: gather the displacement (sign-extended) into T2,
    // then EA = disp + register. When the register is the PC, GprIdx reads
    // the PC *after* the displacement bytes — exactly the VAX base rule —
    // because the gather advanced it.
    ua.global("ea.dispb");
    ua.call("ifetch.byte");
    ua.alu_l(AluOp::SextB, imm(0), MicroReg::Mdr, t(2));
    ua.jmp("ea.disp.common");

    ua.global("ea.dispw");
    ua.mov(imm(2), t(14));
    ua.call("istream.n");
    ua.alu_l(AluOp::SextW, imm(0), t(2), t(2));
    ua.jmp("ea.disp.common");

    ua.global("ea.displ");
    ua.mov(imm(4), t(14));
    ua.call("istream.n");
    ua.label("ea.disp.common");
    ua.alu_l(AluOp::Add, t(2), MicroReg::GprIdx, t(0));
    ua.ret();

    // Deferred displacement: EA points at a longword holding the address.
    ua.global("ea.dispbd");
    ua.call("ea.dispb");
    ua.jmp("ea.defer");
    ua.global("ea.dispwd");
    ua.call("ea.dispw");
    ua.jmp("ea.defer");
    ua.global("ea.displd");
    ua.call("ea.displ");
    ua.label("ea.defer");
    ua.mov(t(0), MicroReg::Mar);
    ua.call("ptr.read");
    ua.mov(MicroReg::Mdr, t(0));
    ua.ret();

    ua.commit(cs).expect("ea");
}

fn build_handlers(cs: &mut ControlStore) {
    let mut ua = MicroAsm::new();

    // ── Read table ────────────────────────────────────────────────────
    ua.global("sr.lit");
    ua.alu_l(AluOp::And, MicroReg::Spec, imm(0x3F), t(0));
    ua.ret();

    ua.global("sr.reg");
    ua.jif(MicroCond::RegNumIsPc, "cs.rsvd.mode");
    ua.mov(MicroReg::GprIdx, t(0));
    ua.ret();

    // Shared tail: EA in T0 → read the datum.
    ua.global("sr.finish");
    ua.mov(t(0), MicroReg::Mar);
    ua.call_entry(Entry::XferRead);
    ua.mov(MicroReg::Mdr, t(0));
    ua.ret();

    ua.global("sr.regd");
    ua.call("ea.regd");
    ua.jmp("sr.finish");
    ua.global("sr.autodec");
    ua.call("ea.autodec");
    ua.jmp("sr.finish");
    ua.global("sr.autoinc");
    ua.jif(MicroCond::RegNumIsPc, "sr.imm");
    ua.call("ea.autoinc");
    ua.jmp("sr.finish");
    ua.global("sr.imm");
    ua.call("istream.osize");
    ua.mov(t(2), t(0));
    ua.ret();
    ua.global("sr.autoincd");
    ua.jif(MicroCond::RegNumIsPc, "sr.absr");
    ua.call("ea.autoincd");
    ua.jmp("sr.finish");
    ua.global("sr.absr");
    ua.call("ea.abs");
    ua.jmp("sr.finish");
    ua.global("sr.dispb");
    ua.call("ea.dispb");
    ua.jmp("sr.finish");
    ua.global("sr.dispw");
    ua.call("ea.dispw");
    ua.jmp("sr.finish");
    ua.global("sr.displ");
    ua.call("ea.displ");
    ua.jmp("sr.finish");
    ua.global("sr.dispbd");
    ua.call("ea.dispbd");
    ua.jmp("sr.finish");
    ua.global("sr.dispwd");
    ua.call("ea.dispwd");
    ua.jmp("sr.finish");
    ua.global("sr.displd");
    ua.call("ea.displd");
    ua.jmp("sr.finish");

    // ── Write table ───────────────────────────────────────────────────
    // Register destination: merge T1 into the register at operand size.
    ua.global("sw.reg");
    ua.jif(MicroCond::RegNumIsPc, "cs.rsvd.mode");
    ua.alu_l(AluOp::And, t(1), MicroReg::OSizeMask, t(2));
    ua.alu_l(AluOp::BicR, MicroReg::OSizeMask, MicroReg::GprIdx, t(3));
    ua.alu_l(AluOp::Or, t(2), t(3), MicroReg::GprIdx);
    ua.ret();

    ua.global("sw.finish");
    ua.mov(t(0), MicroReg::Mar);
    ua.mov(t(1), MicroReg::Mdr);
    ua.call_entry(Entry::XferWrite);
    ua.ret();

    ua.global("sw.regd");
    ua.call("ea.regd");
    ua.jmp("sw.finish");
    ua.global("sw.autodec");
    ua.call("ea.autodec");
    ua.jmp("sw.finish");
    ua.global("sw.autoinc");
    ua.jif(MicroCond::RegNumIsPc, "cs.rsvd.mode");
    ua.call("ea.autoinc");
    ua.jmp("sw.finish");
    ua.global("sw.autoincd");
    ua.jif(MicroCond::RegNumIsPc, "sw.absw");
    ua.call("ea.autoincd");
    ua.jmp("sw.finish");
    ua.global("sw.absw");
    ua.call("ea.abs");
    ua.jmp("sw.finish");
    ua.global("sw.dispb");
    ua.call("ea.dispb");
    ua.jmp("sw.finish");
    ua.global("sw.dispw");
    ua.call("ea.dispw");
    ua.jmp("sw.finish");
    ua.global("sw.displ");
    ua.call("ea.displ");
    ua.jmp("sw.finish");
    ua.global("sw.dispbd");
    ua.call("ea.dispbd");
    ua.jmp("sw.finish");
    ua.global("sw.dispwd");
    ua.call("ea.dispwd");
    ua.jmp("sw.finish");
    ua.global("sw.displd");
    ua.call("ea.displd");
    ua.jmp("sw.finish");

    // ── Modify table ──────────────────────────────────────────────────
    // Register: value in T0, descriptor T4=1/T5=RegNum.
    ua.global("sm.reg");
    ua.jif(MicroCond::RegNumIsPc, "cs.rsvd.mode");
    ua.mov(MicroReg::GprIdx, t(0));
    ua.mov(imm(1), t(4));
    ua.mov(MicroReg::RegNum, t(5));
    ua.ret();

    // Memory: EA in T0 → descriptor T4=0/T6=EA, then read the old value.
    ua.global("sm.finish");
    ua.mov(t(0), t(6));
    ua.mov(imm(0), t(4));
    ua.mov(t(0), MicroReg::Mar);
    ua.call_entry(Entry::XferRead);
    ua.mov(MicroReg::Mdr, t(0));
    ua.ret();

    ua.global("sm.regd");
    ua.call("ea.regd");
    ua.jmp("sm.finish");
    ua.global("sm.autodec");
    ua.call("ea.autodec");
    ua.jmp("sm.finish");
    ua.global("sm.autoinc");
    ua.jif(MicroCond::RegNumIsPc, "cs.rsvd.mode");
    ua.call("ea.autoinc");
    ua.jmp("sm.finish");
    ua.global("sm.autoincd");
    ua.jif(MicroCond::RegNumIsPc, "sm.absm");
    ua.call("ea.autoincd");
    ua.jmp("sm.finish");
    ua.global("sm.absm");
    ua.call("ea.abs");
    ua.jmp("sm.finish");
    ua.global("sm.dispb");
    ua.call("ea.dispb");
    ua.jmp("sm.finish");
    ua.global("sm.dispw");
    ua.call("ea.dispw");
    ua.jmp("sm.finish");
    ua.global("sm.displ");
    ua.call("ea.displ");
    ua.jmp("sm.finish");
    ua.global("sm.dispbd");
    ua.call("ea.dispbd");
    ua.jmp("sm.finish");
    ua.global("sm.dispwd");
    ua.call("ea.dispwd");
    ua.jmp("sm.finish");
    ua.global("sm.displd");
    ua.call("ea.displd");
    ua.jmp("sm.finish");

    // ── Addr table ────────────────────────────────────────────────────
    // Mostly tail-calls into the ea.* subroutines; register and immediate
    // forms have no address.
    ua.global("sa.autoinc");
    ua.jif(MicroCond::RegNumIsPc, "cs.rsvd.mode");
    ua.jmp("ea.autoinc");
    ua.global("sa.autoincd");
    ua.jif(MicroCond::RegNumIsPc, "ea.abs");
    ua.jmp("ea.autoincd");

    ua.commit(cs).expect("spec handlers");
}

fn build_writeback(cs: &mut ControlStore) {
    // spec.writeback: store T1 per the T4/T5/T6 descriptor.
    let mut ua = MicroAsm::new();
    ua.global("spec.writeback");
    ua.test(t(4));
    ua.jif(MicroCond::UNotZero, "toreg");
    ua.mov(t(6), MicroReg::Mar);
    ua.mov(t(1), MicroReg::Mdr);
    ua.call_entry(Entry::XferWrite);
    ua.ret();
    ua.label("toreg");
    ua.mov(t(5), MicroReg::RegNum);
    ua.alu_l(AluOp::And, t(1), MicroReg::OSizeMask, t(2));
    ua.alu_l(AluOp::BicR, MicroReg::OSizeMask, MicroReg::GprIdx, t(3));
    ua.alu_l(AluOp::Or, t(2), t(3), MicroReg::GprIdx);
    ua.ret();
    ua.commit(cs).expect("spec.writeback");
    let _ = JUNK; // conventions documented in the module header
    let _ = DataSize::Long;
}

fn assemble_tables(cs: &ControlStore) -> [[u32; 16]; SpecTable::COUNT] {
    let sym = |name: &str| cs.symbol(name).unwrap_or_else(|| panic!("missing {name}"));
    let rsvd = sym("cs.rsvd.mode");

    let mut tables = [[rsvd; 16]; SpecTable::COUNT];

    // Literal nibbles 0–3 share a handler; mode 4 is reserved everywhere.
    let read = &mut tables[SpecTable::Read.index()];
    for slot in read.iter_mut().take(4) {
        *slot = sym("sr.lit");
    }
    read[5] = sym("sr.reg");
    read[6] = sym("sr.regd");
    read[7] = sym("sr.autodec");
    read[8] = sym("sr.autoinc");
    read[9] = sym("sr.autoincd");
    read[0xA] = sym("sr.dispb");
    read[0xB] = sym("sr.dispbd");
    read[0xC] = sym("sr.dispw");
    read[0xD] = sym("sr.dispwd");
    read[0xE] = sym("sr.displ");
    read[0xF] = sym("sr.displd");

    let write = &mut tables[SpecTable::Write.index()];
    write[5] = sym("sw.reg");
    write[6] = sym("sw.regd");
    write[7] = sym("sw.autodec");
    write[8] = sym("sw.autoinc");
    write[9] = sym("sw.autoincd");
    write[0xA] = sym("sw.dispb");
    write[0xB] = sym("sw.dispbd");
    write[0xC] = sym("sw.dispw");
    write[0xD] = sym("sw.dispwd");
    write[0xE] = sym("sw.displ");
    write[0xF] = sym("sw.displd");

    let modify = &mut tables[SpecTable::Modify.index()];
    modify[5] = sym("sm.reg");
    modify[6] = sym("sm.regd");
    modify[7] = sym("sm.autodec");
    modify[8] = sym("sm.autoinc");
    modify[9] = sym("sm.autoincd");
    modify[0xA] = sym("sm.dispb");
    modify[0xB] = sym("sm.dispbd");
    modify[0xC] = sym("sm.dispw");
    modify[0xD] = sym("sm.dispwd");
    modify[0xE] = sym("sm.displ");
    modify[0xF] = sym("sm.displd");

    let addr = &mut tables[SpecTable::Addr.index()];
    addr[6] = sym("ea.regd");
    addr[7] = sym("ea.autodec");
    addr[8] = sym("sa.autoinc");
    addr[9] = sym("sa.autoincd");
    addr[0xA] = sym("ea.dispb");
    addr[0xB] = sym("ea.dispbd");
    addr[0xC] = sym("ea.dispw");
    addr[0xD] = sym("ea.dispwd");
    addr[0xE] = sym("ea.displ");
    addr[0xF] = sym("ea.displd");

    tables
}

#[cfg(test)]
mod tests {
    use crate::stock;
    use crate::uop::SpecTable;

    #[test]
    fn literal_nibbles_share_handler() {
        let cs = stock::build();
        let lit = cs.symbol("sr.lit").unwrap();
        for n in 0..4 {
            assert_eq!(cs.spec_target(SpecTable::Read, n), lit);
        }
    }

    #[test]
    fn write_table_rejects_literals() {
        let cs = stock::build();
        let rsvd = cs.symbol("cs.rsvd.mode").unwrap();
        for n in 0..4 {
            assert_eq!(cs.spec_target(SpecTable::Write, n), rsvd);
            assert_eq!(cs.spec_target(SpecTable::Modify, n), rsvd);
            assert_eq!(cs.spec_target(SpecTable::Addr, n), rsvd);
        }
        // Register mode has no address.
        assert_eq!(cs.spec_target(SpecTable::Addr, 5), rsvd);
    }
}
