//! Microcode for system-control instructions: halt, traps, `rei`,
//! privileged-register moves and the context-switch pair
//! (`svpctx`/`ldpctx`).
//!
//! PCB layout (physical, addressed by the `PCBB` privileged register):
//!
//! ```text
//! +0   KSP      +4   USP
//! +8   R0 … +60 R13
//! +64  PC       +68  PSL
//! +72  P0BR     +76  P0LR
//! +80  P1BR     +84  P1LR
//! +88  PID (SVX extension; read by the ATUM ldpctx patch)
//! ```

use super::{imm, t, JUNK, PC, SP};
use crate::masm::MicroAsm;
use crate::store::ControlStore;
use crate::uop::{AluOp, FaultKind, MicroCond, MicroOp, MicroReg};
use atum_arch::{DataSize, Opcode, PrivReg};

/// PCB field offsets (longwords at PCBB + offset).
pub mod pcb {
    /// Kernel stack pointer.
    pub const KSP: u32 = 0;
    /// User stack pointer.
    pub const USP: u32 = 4;
    /// Base of the R0–R13 block.
    pub const GPRS: u32 = 8;
    /// Saved PC.
    pub const PC: u32 = 64;
    /// Saved PSL.
    pub const PSL: u32 = 68;
    /// P0 page-table base.
    pub const P0BR: u32 = 72;
    /// P0 page-table length.
    pub const P0LR: u32 = 76;
    /// P1 page-table base.
    pub const P1BR: u32 = 80;
    /// P1 page-table length.
    pub const P1LR: u32 = 84;
    /// Process id (SVX extension, consumed by the ATUM patch).
    pub const PID: u32 = 88;
    /// Total PCB size in bytes.
    pub const SIZE: u32 = 92;
}

fn rd_pr(ua: &mut MicroAsm, pr: PrivReg, dst: MicroReg) {
    ua.op(MicroOp::ReadPr {
        num: imm(pr.number()),
        dst,
    });
}

fn wr_pr(ua: &mut MicroAsm, pr: PrivReg, src: MicroReg) {
    ua.op(MicroOp::WritePr {
        num: imm(pr.number()),
        src,
    });
}

/// Builds the routines; returns (opcode, symbol) pairs for dispatch.
pub fn build(cs: &mut ControlStore) -> Vec<(Opcode, &'static str)> {
    let mut out = Vec::new();

    // Trivia.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.halt");
        ua.jif(MicroCond::UserMode, "cs.priv");
        ua.op(MicroOp::Halt);
        ua.decode_next();
        ua.global("i.nop");
        ua.decode_next();
        ua.global("i.bpt");
        ua.fault(FaultKind::Breakpoint);
        ua.commit(cs).expect("sys trivia");
        out.push((Opcode::Halt, "i.halt"));
        out.push((Opcode::Nop, "i.nop"));
        out.push((Opcode::Bpt, "i.bpt"));
    }

    // chmk code.rw — the system-call trap.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.chmk");
        ua.set_size(DataSize::Word);
        ua.call("spec.read");
        ua.mov(t(0), MicroReg::ExcParam);
        ua.fault(FaultKind::Chmk);
        ua.commit(cs).expect("i.chmk");
        out.push((Opcode::Chmk, "i.chmk"));
    }

    // rei — return from exception/interrupt. SVX restricts it to kernel
    // mode (documented deviation; the VAX validated a no-privilege-gain
    // rule instead).
    {
        let mut ua = MicroAsm::new();
        ua.global("i.rei");
        ua.jif(MicroCond::UserMode, "cs.priv");
        ua.call("stack.pop");
        ua.mov(t(0), t(7)); // new PC
        ua.call("stack.pop");
        ua.mov(t(0), t(8)); // new PSL
                            // If returning to user mode, bank the stack pointers.
        ua.alu_l(AluOp::Lsr, imm(24), t(8), JUNK);
        ua.alu_l(AluOp::And, JUNK, imm(3), JUNK);
        ua.jif(MicroCond::UZero, "tokernel");
        wr_pr(&mut ua, PrivReg::Ksp, SP);
        rd_pr(&mut ua, PrivReg::Usp, SP);
        ua.label("tokernel");
        ua.mov(t(8), MicroReg::Psl);
        ua.mov(t(7), PC);
        ua.decode_next();
        ua.commit(cs).expect("i.rei");
        out.push((Opcode::Rei, "i.rei"));
    }

    // mtpr src.rl, prnum.rl / mfpr prnum.rl, dst.wl.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.mtpr");
        ua.jif(MicroCond::UserMode, "cs.priv");
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.mov(t(0), t(7));
        ua.call("spec.read");
        ua.op(MicroOp::WritePr {
            num: t(0),
            src: t(7),
        });
        ua.decode_next();
        ua.commit(cs).expect("i.mtpr");
        out.push((Opcode::Mtpr, "i.mtpr"));

        let mut ua = MicroAsm::new();
        ua.global("i.mfpr");
        ua.jif(MicroCond::UserMode, "cs.priv");
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.op(MicroOp::ReadPr {
            num: t(0),
            dst: t(1),
        });
        ua.call("spec.write");
        ua.decode_next();
        ua.commit(cs).expect("i.mfpr");
        out.push((Opcode::Mfpr, "i.mfpr"));
    }

    // svpctx — save context into the PCB. Expects to run inside an
    // exception/interrupt frame: pops PC and PSL off the kernel stack into
    // the PCB, then saves R0–R13, the stack pointers and the MMU state.
    // PCB accesses are physical (hardware-internal, untraced).
    {
        let mut ua = MicroAsm::new();
        ua.global("i.svpctx");
        ua.jif(MicroCond::UserMode, "cs.priv");
        rd_pr(&mut ua, PrivReg::Pcbb, t(7));
        ua.call("stack.pop"); // PC of the interrupted context
        ua.mov(t(0), t(8));
        ua.call("stack.pop"); // PSL of the interrupted context
        ua.mov(t(0), t(9));
        // R0..R13 → PCB.
        ua.mov(imm(0), t(10));
        ua.label("save");
        ua.mov(t(10), MicroReg::RegNum);
        ua.alu_l(AluOp::Lsl, imm(2), t(10), JUNK);
        ua.alu_l(AluOp::Add, JUNK, imm(pcb::GPRS), JUNK);
        ua.alu_l(AluOp::Add, t(7), JUNK, MicroReg::Mar);
        ua.mov(MicroReg::GprIdx, MicroReg::Mdr);
        ua.op(MicroOp::PhysWrite);
        ua.alu_l(AluOp::Add, t(10), imm(1), t(10));
        ua.alu_l(AluOp::Sub, t(10), imm(14), JUNK);
        ua.jif(MicroCond::UNotZero, "save");
        // KSP (the SP as it stands after the pops), USP latch, PC, PSL.
        ua.alu_l(AluOp::Add, t(7), imm(pcb::KSP), MicroReg::Mar);
        ua.mov(SP, MicroReg::Mdr);
        ua.op(MicroOp::PhysWrite);
        rd_pr(&mut ua, PrivReg::Usp, MicroReg::Mdr);
        ua.alu_l(AluOp::Add, t(7), imm(pcb::USP), MicroReg::Mar);
        ua.op(MicroOp::PhysWrite);
        ua.alu_l(AluOp::Add, t(7), imm(pcb::PC), MicroReg::Mar);
        ua.mov(t(8), MicroReg::Mdr);
        ua.op(MicroOp::PhysWrite);
        ua.alu_l(AluOp::Add, t(7), imm(pcb::PSL), MicroReg::Mar);
        ua.mov(t(9), MicroReg::Mdr);
        ua.op(MicroOp::PhysWrite);
        // MMU per-process state.
        for (off, pr) in [
            (pcb::P0BR, PrivReg::P0br),
            (pcb::P0LR, PrivReg::P0lr),
            (pcb::P1BR, PrivReg::P1br),
            (pcb::P1LR, PrivReg::P1lr),
        ] {
            rd_pr(&mut ua, pr, MicroReg::Mdr);
            ua.alu_l(AluOp::Add, t(7), imm(off), MicroReg::Mar);
            ua.op(MicroOp::PhysWrite);
        }
        ua.decode_next();
        ua.commit(cs).expect("i.svpctx");
        out.push((Opcode::Svpctx, "i.svpctx"));
    }

    // ldpctx — load context from the PCB (set PCBB first), flush the
    // per-process translation buffer, and push PSL/PC so the kernel can
    // `rei` into the new context. This is the routine the ATUM patch
    // wraps to emit process-switch markers.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.ldpctx");
        ua.jif(MicroCond::UserMode, "cs.priv");
        rd_pr(&mut ua, PrivReg::Pcbb, t(7));
        // R0..R13 ← PCB.
        ua.mov(imm(0), t(10));
        ua.label("load");
        ua.mov(t(10), MicroReg::RegNum);
        ua.alu_l(AluOp::Lsl, imm(2), t(10), JUNK);
        ua.alu_l(AluOp::Add, JUNK, imm(pcb::GPRS), JUNK);
        ua.alu_l(AluOp::Add, t(7), JUNK, MicroReg::Mar);
        ua.op(MicroOp::PhysRead);
        ua.mov(MicroReg::Mdr, MicroReg::GprIdx);
        ua.alu_l(AluOp::Add, t(10), imm(1), t(10));
        ua.alu_l(AluOp::Sub, t(10), imm(14), JUNK);
        ua.jif(MicroCond::UNotZero, "load");
        // Stack pointers and MMU state.
        ua.alu_l(AluOp::Add, t(7), imm(pcb::KSP), MicroReg::Mar);
        ua.op(MicroOp::PhysRead);
        ua.mov(MicroReg::Mdr, SP);
        ua.alu_l(AluOp::Add, t(7), imm(pcb::USP), MicroReg::Mar);
        ua.op(MicroOp::PhysRead);
        wr_pr(&mut ua, PrivReg::Usp, MicroReg::Mdr);
        for (off, pr) in [
            (pcb::P0BR, PrivReg::P0br),
            (pcb::P0LR, PrivReg::P0lr),
            (pcb::P1BR, PrivReg::P1br),
            (pcb::P1LR, PrivReg::P1lr),
        ] {
            ua.alu_l(AluOp::Add, t(7), imm(off), MicroReg::Mar);
            ua.op(MicroOp::PhysRead);
            wr_pr(&mut ua, pr, MicroReg::Mdr);
        }
        ua.op(MicroOp::TbFlushProc);
        // Push PSL then PC for the kernel's `rei` (traced kernel-stack
        // writes, as on the VAX).
        ua.alu_l(AluOp::Add, t(7), imm(pcb::PSL), MicroReg::Mar);
        ua.op(MicroOp::PhysRead);
        ua.mov(MicroReg::Mdr, t(1));
        ua.call("stack.push");
        ua.alu_l(AluOp::Add, t(7), imm(pcb::PC), MicroReg::Mar);
        ua.op(MicroOp::PhysRead);
        ua.mov(MicroReg::Mdr, t(1));
        ua.call("stack.push");
        ua.decode_next();
        ua.commit(cs).expect("i.ldpctx");
        out.push((Opcode::Ldpctx, "i.ldpctx"));
    }

    out
}
