//! The stock SVX microcode.
//!
//! [`build`] assembles the complete control store: shared helpers
//! (instruction fetch, memory transfer, stack, istream gathering), the four
//! operand-specifier decode tables, one micro-routine per architectural
//! instruction, and the exception-entry flow; then it wires the entry table
//! and dispatch tables.
//!
//! ## Micro-register conventions
//!
//! | Register | Role |
//! |---|---|
//! | `T0` | specifier result: operand value (`spec.read`/`spec.modify`) or effective address (`spec.addr`) |
//! | `T1` | value for `spec.write`, `spec.writeback` and `stack.push` |
//! | `T2`, `T3` | specifier/helper scratch |
//! | `T4`–`T6` | modify write-back descriptor: is-register flag, register number, address |
//! | `T7`–`T12` | instruction-level saves |
//! | `T13`, `T14` | istream gathering scratch |
//! | `T15` | junk destination (flag-setting ops) |
//! | `P0`–`P7` | never touched — reserved for control-store patches |
//!
//! Micro-flags do not survive `Call`s (helpers use the ALU); routines
//! branch on flags immediately after setting them. The architectural
//! condition codes are only written by ops with a non-`None` [`CcEffect`],
//! so helpers never disturb them.
//!
//! [`CcEffect`]: crate::uop::CcEffect

mod arith;
mod branch;
mod call;
mod plumbing;
mod spec;
mod string;
mod sys;

pub use sys::pcb;

use crate::store::ControlStore;
use crate::uop::{Entry, MicroReg};
use atum_arch::Opcode;

/// Junk destination for flag-setting ALU ops.
pub(crate) const JUNK: MicroReg = MicroReg::T(15);
/// Stack pointer.
pub(crate) const SP: MicroReg = MicroReg::Gpr(14);
/// Program counter.
pub(crate) const PC: MicroReg = MicroReg::Gpr(15);

/// Immediate-source shorthand.
pub(crate) fn imm(v: u32) -> MicroReg {
    MicroReg::Imm(v)
}

/// Micro-temp shorthand.
pub(crate) fn t(n: u8) -> MicroReg {
    MicroReg::T(n)
}

/// Builds the complete stock control store.
pub fn build() -> ControlStore {
    let mut cs = ControlStore::new();

    let fault_addr = plumbing::build(&mut cs);
    let spec_tables = spec::build(&mut cs, fault_addr);

    // Instruction routines; each submodule returns (opcode, symbol) pairs.
    let mut insns: Vec<(Opcode, &'static str)> = Vec::new();
    insns.extend(arith::build(&mut cs));
    insns.extend(branch::build(&mut cs));
    insns.extend(call::build(&mut cs));
    insns.extend(string::build(&mut cs));
    insns.extend(sys::build(&mut cs));

    // Opcode dispatch table: unassigned bytes fault.
    let mut opcode_table = [fault_addr; 256];
    for (op, sym) in &insns {
        let addr = cs
            .symbol(sym)
            .unwrap_or_else(|| panic!("instruction routine {sym} missing"));
        opcode_table[op.to_byte() as usize] = addr;
    }

    // Every assigned opcode must have a routine.
    for op in Opcode::ALL {
        assert!(
            opcode_table[op.to_byte() as usize] != fault_addr,
            "no microcode for {op}"
        );
    }

    let entries = [
        cs.symbol(Entry::Fetch.symbol()).expect("fetch.insn"),
        cs.symbol(Entry::ExcDispatch.symbol()).expect("exc.entry"),
        cs.symbol(Entry::XferRead.symbol()).expect("xfer.read"),
        cs.symbol(Entry::XferWrite.symbol()).expect("xfer.write"),
        cs.symbol(Entry::XferIFetch.symbol()).expect("xfer.ifetch"),
    ];

    cs.finish_stock(fault_addr, entries, opcode_table, spec_tables);
    cs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::{MicroOp, SpecTable};

    #[test]
    fn builds_without_panicking() {
        let cs = build();
        assert!(cs.len() > 200, "store suspiciously small: {}", cs.len());
        assert_eq!(cs.patch_words(), 0);
    }

    #[test]
    fn every_opcode_dispatches_somewhere_real() {
        let cs = build();
        for op in Opcode::ALL {
            let addr = cs.opcode_target(op.to_byte());
            assert!(addr < cs.len(), "{op} dispatches out of store");
            assert_ne!(addr, cs.fault_addr(), "{op} dispatches to fault");
        }
    }

    #[test]
    fn unassigned_opcodes_dispatch_to_fault() {
        let cs = build();
        let assigned: std::collections::HashSet<u8> =
            Opcode::ALL.iter().map(|o| o.to_byte()).collect();
        for byte in 0u8..=255 {
            if !assigned.contains(&byte) {
                assert_eq!(cs.opcode_target(byte), cs.fault_addr());
            }
        }
    }

    #[test]
    fn entries_point_at_symbols() {
        let cs = build();
        for e in Entry::ALL {
            assert_eq!(cs.entry(e), cs.symbol(e.symbol()).unwrap());
        }
    }

    #[test]
    fn spec_tables_fully_populated() {
        let cs = build();
        for table in [
            SpecTable::Read,
            SpecTable::Write,
            SpecTable::Modify,
            SpecTable::Addr,
        ] {
            for nibble in 0..16 {
                let addr = cs.spec_target(table, nibble);
                assert!(addr < cs.len(), "{table:?}/{nibble} out of store");
            }
        }
    }

    #[test]
    fn mode_4_faults_in_every_table() {
        let cs = build();
        let rsvd = cs.symbol("cs.rsvd.mode").unwrap();
        for table in [
            SpecTable::Read,
            SpecTable::Write,
            SpecTable::Modify,
            SpecTable::Addr,
        ] {
            assert_eq!(cs.spec_target(table, 4), rsvd);
        }
    }

    #[test]
    fn no_stock_word_uses_patch_scratch() {
        let cs = build();
        for addr in 0..cs.len() {
            let uses_p = match cs.word(addr) {
                MicroOp::Mov { src, dst } => is_p(src) || is_p(dst),
                MicroOp::Alu { a, b, dst, .. } => is_p(a) || is_p(b) || is_p(dst),
                MicroOp::ReadPr { num, dst } => is_p(num) || is_p(dst),
                MicroOp::WritePr { num, src } => is_p(num) || is_p(src),
                MicroOp::SetSizeDyn(r) => is_p(r),
                _ => false,
            };
            assert!(!uses_p, "stock word {addr} uses patch scratch");
        }
    }

    fn is_p(r: MicroReg) -> bool {
        matches!(r, MicroReg::P(_))
    }
}
