//! Microcode for branch, loop and subroutine-linkage instructions.

use super::{imm, t, JUNK, PC};
use crate::masm::MicroAsm;
use crate::store::ControlStore;
use crate::uop::{AluOp, CcEffect, MicroCond, MicroReg};
use atum_arch::{DataSize, Opcode};

/// Builds the routines; returns (opcode, symbol) pairs for dispatch.
pub fn build(cs: &mut ControlStore) -> Vec<(Opcode, &'static str)> {
    let mut out = Vec::new();

    // Shared helpers: gather a branch displacement into T2 (sign-extended),
    // and the taken-branch tail.
    {
        let mut ua = MicroAsm::new();
        ua.global("br.disp8");
        ua.call("ifetch.byte");
        ua.alu_l(AluOp::SextB, imm(0), MicroReg::Mdr, t(2));
        ua.ret();
        ua.global("br.disp16");
        ua.mov(imm(2), t(14));
        ua.call("istream.n");
        ua.alu_l(AluOp::SextW, imm(0), t(2), t(2));
        ua.ret();
        // br.take: PC ← PC + T2 (invalidates the prefetch buffer), done.
        ua.global("br.take");
        ua.alu_l(AluOp::Add, PC, t(2), PC);
        ua.decode_next();
        ua.commit(cs).expect("branch helpers");
    }

    // Unconditional branches.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.brb");
        ua.call("br.disp8");
        ua.jmp("br.take");
        ua.commit(cs).expect("i.brb");
        out.push((Opcode::Brb, "i.brb"));

        let mut ua = MicroAsm::new();
        ua.global("i.brw");
        ua.call("br.disp16");
        ua.jmp("br.take");
        ua.commit(cs).expect("i.brw");
        out.push((Opcode::Brw, "i.brw"));
    }

    // Conditional branches: displacement first (istream must be consumed
    // whether or not the branch is taken), then test.
    for (op, sym, cond) in [
        (Opcode::Bneq, "i.bneq", MicroCond::ArchNeq),
        (Opcode::Beql, "i.beql", MicroCond::ArchEql),
        (Opcode::Bgtr, "i.bgtr", MicroCond::ArchGtr),
        (Opcode::Bleq, "i.bleq", MicroCond::ArchLeq),
        (Opcode::Bgeq, "i.bgeq", MicroCond::ArchGeq),
        (Opcode::Blss, "i.blss", MicroCond::ArchLss),
        (Opcode::Bgtru, "i.bgtru", MicroCond::ArchGtru),
        (Opcode::Blequ, "i.blequ", MicroCond::ArchLequ),
        (Opcode::Bvc, "i.bvc", MicroCond::ArchVc),
        (Opcode::Bvs, "i.bvs", MicroCond::ArchVs),
        (Opcode::Bcc, "i.bcc", MicroCond::ArchCc),
        (Opcode::Bcs, "i.bcs", MicroCond::ArchCs),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.call("br.disp8");
        ua.jif(cond, "br.take");
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    // Subroutine branches: push the return PC (after the displacement).
    for (op, sym, disp) in [
        (Opcode::Bsbb, "i.bsbb", "br.disp8"),
        (Opcode::Bsbw, "i.bsbw", "br.disp16"),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.call(disp);
        ua.mov(PC, t(1));
        ua.call("stack.push");
        ua.jmp("br.take");
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    // rsb: pop the return PC.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.rsb");
        ua.call("stack.pop");
        ua.mov(t(0), PC);
        ua.decode_next();
        ua.commit(cs).expect("i.rsb");
        out.push((Opcode::Rsb, "i.rsb"));
    }

    // jmp / jsb: address operand.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.jmp");
        ua.set_size(DataSize::Byte);
        ua.call("spec.addr");
        ua.mov(t(0), PC);
        ua.decode_next();
        ua.commit(cs).expect("i.jmp");
        out.push((Opcode::Jmp, "i.jmp"));

        let mut ua = MicroAsm::new();
        ua.global("i.jsb");
        ua.set_size(DataSize::Byte);
        ua.call("spec.addr");
        ua.mov(t(0), t(7));
        ua.mov(PC, t(1));
        ua.call("stack.push");
        ua.mov(t(7), PC);
        ua.decode_next();
        ua.commit(cs).expect("i.jsb");
        out.push((Opcode::Jsb, "i.jsb"));
    }

    // sobgtr / sobgeq: decrement, write back, branch on the new value.
    for (op, sym, cond) in [
        (Opcode::Sobgtr, "i.sobgtr", MicroCond::ArchGtr),
        (Opcode::Sobgeq, "i.sobgeq", MicroCond::ArchGeq),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.set_size(DataSize::Long);
        ua.call("spec.modify");
        ua.alu(
            AluOp::RSub,
            imm(1),
            t(0),
            t(1),
            CcEffect::Arith,
            DataSize::Long,
        );
        ua.call("spec.writeback");
        ua.call("br.disp8");
        ua.jif(cond, "br.take");
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    // aoblss / aobleq: limit.rl, index.ml; the branch test compares the
    // incremented index against the limit (micro-flags, not PSL).
    for (op, sym, cond) in [
        (Opcode::Aoblss, "i.aoblss", MicroCond::USLess),
        (Opcode::Aobleq, "i.aobleq", MicroCond::USLeq),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.mov(t(0), t(7));
        ua.call("spec.modify");
        ua.alu(
            AluOp::Add,
            t(0),
            imm(1),
            t(1),
            CcEffect::Arith,
            DataSize::Long,
        );
        ua.mov(t(1), t(8));
        ua.call("spec.writeback");
        ua.call("br.disp8");
        ua.alu_l(AluOp::Sub, t(8), t(7), JUNK);
        ua.jif(cond, "br.take");
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    // blbs / blbc: branch on low bit.
    for (op, sym, cond) in [
        (Opcode::Blbs, "i.blbs", MicroCond::UNotZero),
        (Opcode::Blbc, "i.blbc", MicroCond::UZero),
    ] {
        let mut ua = MicroAsm::new();
        ua.global(sym);
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.mov(t(0), t(7));
        ua.call("br.disp8");
        ua.alu_l(AluOp::And, t(7), imm(1), JUNK);
        ua.jif(cond, "br.take");
        ua.decode_next();
        ua.commit(cs).expect(sym);
        out.push((op, sym));
    }

    out
}
