//! Microcode for the procedure-call instructions (`calls`/`ret`) and the
//! register-mask push/pop (`pushr`/`popr`).
//!
//! The `calls` frame (simplified VAX; see DESIGN.md):
//!
//! ```text
//! high addresses
//!   [ args ... ]            pushed by the caller
//!   [ numarg ]              ← AP
//!   [ saved Rn ... ]        registers named by the entry mask, R11 first
//!   [ saved AP ]
//!   [ saved FP ]
//!   [ return PC ]
//!   [ entry mask ]          ← FP = SP
//! low addresses
//! ```

use super::{imm, t, JUNK, PC, SP};
use crate::masm::MicroAsm;
use crate::store::ControlStore;
use crate::uop::{AluOp, Entry, MicroCond, MicroReg};
use atum_arch::{DataSize, Opcode};

const AP: MicroReg = MicroReg::Gpr(12);
const FP: MicroReg = MicroReg::Gpr(13);

/// Builds the routines; returns (opcode, symbol) pairs for dispatch.
pub fn build(cs: &mut ControlStore) -> Vec<(Opcode, &'static str)> {
    let mut out = Vec::new();

    // calls numarg.rl, dst.ab
    {
        let mut ua = MicroAsm::new();
        ua.global("i.calls");
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.mov(t(0), t(7)); // numarg
        ua.set_size(DataSize::Byte);
        ua.call("spec.addr");
        ua.mov(t(0), t(8)); // procedure address
                            // Push numarg; AP will point at it.
        ua.mov(t(7), t(1));
        ua.call("stack.push");
        ua.mov(SP, t(10));
        // Entry mask word at the procedure head.
        ua.mov(t(8), MicroReg::Mar);
        ua.set_size(DataSize::Word);
        ua.call_entry(Entry::XferRead);
        ua.mov(MicroReg::Mdr, t(9));
        // Push R11..R0 per mask.
        ua.mov(imm(11), t(11));
        ua.label("save");
        ua.alu_l(AluOp::Lsr, t(11), t(9), JUNK);
        ua.alu_l(AluOp::And, JUNK, imm(1), JUNK);
        ua.jif(MicroCond::UZero, "skip");
        ua.mov(t(11), MicroReg::RegNum);
        ua.mov(MicroReg::GprIdx, t(1));
        ua.call("stack.push");
        ua.label("skip");
        ua.alu_l(AluOp::Sub, t(11), imm(1), t(11));
        ua.jif(MicroCond::UPos, "save");
        // Push AP, FP, return PC, mask; then build the new frame.
        ua.mov(AP, t(1));
        ua.call("stack.push");
        ua.mov(FP, t(1));
        ua.call("stack.push");
        ua.mov(PC, t(1));
        ua.call("stack.push");
        ua.mov(t(9), t(1));
        ua.call("stack.push");
        ua.mov(t(10), AP);
        ua.mov(SP, FP);
        ua.alu_l(AluOp::Add, t(8), imm(2), PC);
        ua.decode_next();
        ua.commit(cs).expect("i.calls");
        out.push((Opcode::Calls, "i.calls"));
    }

    // ret
    {
        let mut ua = MicroAsm::new();
        ua.global("i.ret");
        ua.mov(FP, SP);
        ua.call("stack.pop"); // mask
        ua.mov(t(0), t(9));
        ua.call("stack.pop"); // return PC
        ua.mov(t(0), t(10));
        ua.call("stack.pop"); // saved FP
        ua.mov(t(0), FP);
        ua.call("stack.pop"); // saved AP
        ua.mov(t(0), AP);
        // Pop saved registers, ascending.
        ua.mov(imm(0), t(11));
        ua.label("restore");
        ua.alu_l(AluOp::Lsr, t(11), t(9), JUNK);
        ua.alu_l(AluOp::And, JUNK, imm(1), JUNK);
        ua.jif(MicroCond::UZero, "skip");
        ua.call("stack.pop");
        ua.mov(t(11), MicroReg::RegNum);
        ua.mov(t(0), MicroReg::GprIdx);
        ua.label("skip");
        ua.alu_l(AluOp::Add, t(11), imm(1), t(11));
        ua.alu_l(AluOp::Sub, t(11), imm(12), JUNK);
        ua.jif(MicroCond::UNotZero, "restore");
        // Pop numarg and drop the argument list.
        ua.call("stack.pop");
        ua.alu_l(AluOp::Lsl, imm(2), t(0), JUNK);
        ua.alu_l(AluOp::Add, SP, JUNK, SP);
        ua.mov(t(10), PC);
        ua.decode_next();
        ua.commit(cs).expect("i.ret");
        out.push((Opcode::Ret, "i.ret"));
    }

    // pushr mask.rw — push registers named by the mask (R0–R13), highest
    // index first so the lowest ends up at the lowest address.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.pushr");
        ua.set_size(DataSize::Word);
        ua.call("spec.read");
        ua.mov(t(0), t(9));
        ua.mov(imm(13), t(11));
        ua.label("save");
        ua.alu_l(AluOp::Lsr, t(11), t(9), JUNK);
        ua.alu_l(AluOp::And, JUNK, imm(1), JUNK);
        ua.jif(MicroCond::UZero, "skip");
        ua.mov(t(11), MicroReg::RegNum);
        ua.mov(MicroReg::GprIdx, t(1));
        ua.call("stack.push");
        ua.label("skip");
        ua.alu_l(AluOp::Sub, t(11), imm(1), t(11));
        ua.jif(MicroCond::UPos, "save");
        ua.decode_next();
        ua.commit(cs).expect("i.pushr");
        out.push((Opcode::Pushr, "i.pushr"));
    }

    // popr mask.rw — inverse order.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.popr");
        ua.set_size(DataSize::Word);
        ua.call("spec.read");
        ua.mov(t(0), t(9));
        ua.mov(imm(0), t(11));
        ua.label("restore");
        ua.alu_l(AluOp::Lsr, t(11), t(9), JUNK);
        ua.alu_l(AluOp::And, JUNK, imm(1), JUNK);
        ua.jif(MicroCond::UZero, "skip");
        ua.call("stack.pop");
        ua.mov(t(11), MicroReg::RegNum);
        ua.mov(t(0), MicroReg::GprIdx);
        ua.label("skip");
        ua.alu_l(AluOp::Add, t(11), imm(1), t(11));
        ua.alu_l(AluOp::Sub, t(11), imm(14), JUNK);
        ua.jif(MicroCond::UNotZero, "restore");
        ua.decode_next();
        ua.commit(cs).expect("i.popr");
        out.push((Opcode::Popr, "i.popr"));
    }

    out
}
