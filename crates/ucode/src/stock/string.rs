//! Microcode for the string/block, queue and bit-field instructions —
//! the long-running microcoded loops that make CISC traces interesting.

use super::{imm, t, JUNK};
use crate::masm::MicroAsm;
use crate::store::ControlStore;
use crate::uop::{AluOp, CcEffect, Entry, MicroCond, MicroReg};
use atum_arch::{DataSize, Opcode};

/// Builds the routines; returns (opcode, symbol) pairs for dispatch.
pub fn build(cs: &mut ControlStore) -> Vec<(Opcode, &'static str)> {
    let mut out = Vec::new();

    // movc3 len.rl, src.ab, dst.ab — byte copy loop.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.movc3");
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.mov(t(0), t(7)); // len
        ua.set_size(DataSize::Byte);
        ua.call("spec.addr");
        ua.mov(t(0), t(8)); // src
        ua.call("spec.addr");
        ua.mov(t(0), t(9)); // dst
        ua.label("loop");
        ua.test(t(7));
        ua.jif(MicroCond::UZero, "done");
        ua.mov(t(8), MicroReg::Mar);
        ua.call_entry(Entry::XferRead); // byte in MDR
        ua.mov(t(9), MicroReg::Mar);
        ua.call_entry(Entry::XferWrite);
        ua.alu_l(AluOp::Add, t(8), imm(1), t(8));
        ua.alu_l(AluOp::Add, t(9), imm(1), t(9));
        ua.alu_l(AluOp::Sub, t(7), imm(1), t(7));
        ua.jmp("loop");
        ua.label("done");
        // R0=0, R1=src end, R2=0, R3=dst end, R4=0, R5=0; Z set.
        ua.mov(imm(0), MicroReg::Gpr(0));
        ua.mov(t(8), MicroReg::Gpr(1));
        ua.mov(imm(0), MicroReg::Gpr(2));
        ua.mov(t(9), MicroReg::Gpr(3));
        ua.mov(imm(0), MicroReg::Gpr(4));
        ua.mov(imm(0), MicroReg::Gpr(5));
        ua.alu(
            AluOp::Pass,
            imm(0),
            imm(0),
            JUNK,
            CcEffect::Test,
            DataSize::Long,
        );
        ua.decode_next();
        ua.commit(cs).expect("i.movc3");
        out.push((Opcode::Movc3, "i.movc3"));
    }

    // cmpc3 len.rl, s1.ab, s2.ab — compare until mismatch; condition codes
    // from the first differing pair. R0 = remaining count, R1/R3 = cursors.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.cmpc3");
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.mov(t(0), t(7));
        ua.set_size(DataSize::Byte);
        ua.call("spec.addr");
        ua.mov(t(0), t(8));
        ua.call("spec.addr");
        ua.mov(t(0), t(9));
        ua.label("loop");
        ua.test(t(7));
        ua.jif(MicroCond::UZero, "equal");
        ua.mov(t(8), MicroReg::Mar);
        ua.call_entry(Entry::XferRead);
        ua.mov(MicroReg::Mdr, t(10));
        ua.mov(t(9), MicroReg::Mar);
        ua.call_entry(Entry::XferRead);
        // Compare s1 byte with s2 byte; stop on mismatch.
        ua.alu(
            AluOp::Sub,
            t(10),
            MicroReg::Mdr,
            JUNK,
            CcEffect::Cmp,
            DataSize::Byte,
        );
        ua.jif(MicroCond::ArchNeq, "done");
        ua.alu_l(AluOp::Add, t(8), imm(1), t(8));
        ua.alu_l(AluOp::Add, t(9), imm(1), t(9));
        ua.alu_l(AluOp::Sub, t(7), imm(1), t(7));
        ua.jmp("loop");
        ua.label("equal");
        ua.alu(
            AluOp::Pass,
            imm(0),
            imm(0),
            JUNK,
            CcEffect::Test,
            DataSize::Long,
        );
        ua.label("done");
        ua.mov(t(7), MicroReg::Gpr(0));
        ua.mov(t(8), MicroReg::Gpr(1));
        ua.mov(t(9), MicroReg::Gpr(3));
        ua.decode_next();
        ua.commit(cs).expect("i.cmpc3");
        out.push((Opcode::Cmpc3, "i.cmpc3"));
    }

    // locc char.rb, len.rl, addr.ab — find a byte. R0 = bytes remaining at
    // the match (0 if none, Z set), R1 = address of the match or the end.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.locc");
        ua.set_size(DataSize::Byte);
        ua.call("spec.read");
        ua.alu_l(AluOp::And, t(0), imm(0xFF), t(10)); // char
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.mov(t(0), t(7)); // len
        ua.set_size(DataSize::Byte);
        ua.call("spec.addr");
        ua.mov(t(0), t(8)); // cursor
        ua.label("loop");
        ua.test(t(7));
        ua.jif(MicroCond::UZero, "done");
        ua.mov(t(8), MicroReg::Mar);
        ua.call_entry(Entry::XferRead);
        ua.alu_l(AluOp::Sub, MicroReg::Mdr, t(10), JUNK);
        ua.jif(MicroCond::UZero, "done");
        ua.alu_l(AluOp::Add, t(8), imm(1), t(8));
        ua.alu_l(AluOp::Sub, t(7), imm(1), t(7));
        ua.jmp("loop");
        ua.label("done");
        ua.mov(t(7), MicroReg::Gpr(0));
        ua.mov(t(8), MicroReg::Gpr(1));
        ua.alu(
            AluOp::Pass,
            imm(0),
            t(7),
            JUNK,
            CcEffect::Test,
            DataSize::Long,
        );
        ua.decode_next();
        ua.commit(cs).expect("i.locc");
        out.push((Opcode::Locc, "i.locc"));
    }

    // insque entry.ab, pred.ab — doubly-linked queue insert.
    // Layout: [addr] = forward link, [addr+4] = backward link.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.insque");
        ua.set_size(DataSize::Byte);
        ua.call("spec.addr");
        ua.mov(t(0), t(7)); // entry
        ua.call("spec.addr");
        ua.mov(t(0), t(8)); // pred
        ua.set_size(DataSize::Long);
        // succ = [pred]
        ua.mov(t(8), MicroReg::Mar);
        ua.call_entry(Entry::XferRead);
        ua.mov(MicroReg::Mdr, t(9));
        // [entry] = succ; [entry+4] = pred
        ua.mov(t(7), MicroReg::Mar);
        ua.call_entry(Entry::XferWrite); // MDR still = succ
        ua.alu_l(AluOp::Add, t(7), imm(4), MicroReg::Mar);
        ua.mov(t(8), MicroReg::Mdr);
        ua.call_entry(Entry::XferWrite);
        // [pred] = entry; [succ+4] = entry
        ua.mov(t(8), MicroReg::Mar);
        ua.mov(t(7), MicroReg::Mdr);
        ua.call_entry(Entry::XferWrite);
        ua.alu_l(AluOp::Add, t(9), imm(4), MicroReg::Mar);
        ua.mov(t(7), MicroReg::Mdr);
        ua.call_entry(Entry::XferWrite);
        // Z set if the queue was empty before (succ == pred).
        ua.alu(AluOp::Sub, t(9), t(8), JUNK, CcEffect::Cmp, DataSize::Long);
        ua.decode_next();
        ua.commit(cs).expect("i.insque");
        out.push((Opcode::Insque, "i.insque"));
    }

    // remque entry.ab, dst.wl — queue removal. V set if the queue was
    // empty (entry linked to itself); Z set if it is empty afterwards.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.remque");
        ua.set_size(DataSize::Byte);
        ua.call("spec.addr");
        ua.mov(t(0), t(7)); // entry
        ua.set_size(DataSize::Long);
        ua.mov(t(7), MicroReg::Mar);
        ua.call_entry(Entry::XferRead);
        ua.mov(MicroReg::Mdr, t(8)); // succ
        ua.alu_l(AluOp::Add, t(7), imm(4), MicroReg::Mar);
        ua.call_entry(Entry::XferRead);
        ua.mov(MicroReg::Mdr, t(9)); // pred
                                     // [pred] = succ; [succ+4] = pred
        ua.mov(t(9), MicroReg::Mar);
        ua.mov(t(8), MicroReg::Mdr);
        ua.call_entry(Entry::XferWrite);
        ua.alu_l(AluOp::Add, t(8), imm(4), MicroReg::Mar);
        ua.mov(t(9), MicroReg::Mdr);
        ua.call_entry(Entry::XferWrite);
        // dst ← entry address; then Z from (succ == pred).
        ua.mov(t(7), t(1));
        ua.call("spec.write");
        ua.alu(AluOp::Sub, t(8), t(9), JUNK, CcEffect::Cmp, DataSize::Long);
        ua.decode_next();
        ua.commit(cs).expect("i.remque");
        out.push((Opcode::Remque, "i.remque"));
    }

    // extzv pos.rl, size.rb, base.ab, dst.wl — extract zero-extended bit
    // field. SVX restriction (documented): size ≤ 24 bits, so the field
    // always fits the unaligned longword read at base + pos/8.
    {
        let mut ua = MicroAsm::new();
        ua.global("i.extzv");
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.mov(t(0), t(7)); // pos
        ua.set_size(DataSize::Byte);
        ua.call("spec.read");
        ua.alu_l(AluOp::And, t(0), imm(0xFF), t(8)); // size
        ua.alu_l(AluOp::Sub, t(8), imm(25), JUNK);
        ua.jif(MicroCond::UPos, "cs.rsvd.operand");
        ua.call("spec.addr");
        ua.mov(t(0), t(9)); // base
                            // MAR ← base + pos>>3; bit ← pos & 7.
        ua.alu_l(AluOp::Lsr, imm(3), t(7), t(10));
        ua.alu_l(AluOp::Add, t(9), t(10), MicroReg::Mar);
        ua.alu_l(AluOp::And, t(7), imm(7), t(11));
        ua.set_size(DataSize::Long);
        ua.call_entry(Entry::XferRead);
        ua.alu_l(AluOp::Lsr, t(11), MicroReg::Mdr, t(12));
        // mask = (1 << size) - 1
        ua.alu_l(AluOp::Lsl, t(8), imm(1), t(13));
        ua.alu_l(AluOp::Sub, t(13), imm(1), t(13));
        ua.alu(
            AluOp::And,
            t(12),
            t(13),
            t(1),
            CcEffect::Logic,
            DataSize::Long,
        );
        ua.call("spec.write");
        ua.decode_next();
        ua.commit(cs).expect("i.extzv");
        out.push((Opcode::Extzv, "i.extzv"));
    }

    // insv src.rl, pos.rl, size.rb, base.ab — insert bit field
    // (read-modify-write of the containing longword).
    {
        let mut ua = MicroAsm::new();
        ua.global("i.insv");
        ua.set_size(DataSize::Long);
        ua.call("spec.read");
        ua.mov(t(0), t(12)); // src
        ua.call("spec.read");
        ua.mov(t(0), t(7)); // pos
        ua.set_size(DataSize::Byte);
        ua.call("spec.read");
        ua.alu_l(AluOp::And, t(0), imm(0xFF), t(8)); // size
        ua.alu_l(AluOp::Sub, t(8), imm(25), JUNK);
        ua.jif(MicroCond::UPos, "cs.rsvd.operand");
        ua.call("spec.addr");
        ua.mov(t(0), t(9)); // base
        ua.alu_l(AluOp::Lsr, imm(3), t(7), t(10));
        ua.alu_l(AluOp::Add, t(9), t(10), t(9)); // byte address
        ua.alu_l(AluOp::And, t(7), imm(7), t(11)); // bit offset
        ua.mov(t(9), MicroReg::Mar);
        ua.set_size(DataSize::Long);
        ua.call_entry(Entry::XferRead);
        ua.mov(MicroReg::Mdr, t(10)); // old longword
                                      // mask = ((1 << size) - 1) << bit
        ua.alu_l(AluOp::Lsl, t(8), imm(1), t(13));
        ua.alu_l(AluOp::Sub, t(13), imm(1), t(13));
        ua.alu_l(AluOp::Lsl, t(11), t(13), t(13));
        // new = (old & ~mask) | ((src << bit) & mask)
        ua.alu_l(AluOp::BicR, t(13), t(10), t(10));
        ua.alu_l(AluOp::Lsl, t(11), t(12), t(14));
        ua.alu_l(AluOp::And, t(14), t(13), t(14));
        ua.alu_l(AluOp::Or, t(10), t(14), MicroReg::Mdr);
        ua.mov(t(9), MicroReg::Mar);
        ua.call_entry(Entry::XferWrite);
        ua.decode_next();
        ua.commit(cs).expect("i.insv");
        out.push((Opcode::Insv, "i.insv"));
    }

    out
}
