//! Shared micro-plumbing: fault stubs, memory transfer routines, the
//! prefetch-buffered instruction fetch, istream gathering, the stack
//! helpers and the exception-entry flow.

use super::{imm, t, JUNK, PC, SP};
use crate::masm::MicroAsm;
use crate::store::ControlStore;
use crate::uop::{AluOp, Entry, FaultKind, MicroCond, MicroOp, MicroReg, RefClass, SizeSel};
use atum_arch::{DataSize, PrivReg, Psl};

/// Builds the plumbing; returns the reserved-instruction fault address
/// (the default opcode-dispatch target).
pub fn build(cs: &mut ControlStore) -> u32 {
    build_faults(cs);
    build_xfer(cs);
    build_ifetch(cs);
    build_istream(cs);
    build_stack(cs);
    build_exc_entry(cs);
    cs.symbol("cs.rsvd.insn").expect("fault routine")
}

fn build_faults(cs: &mut ControlStore) {
    let mut ua = MicroAsm::new();
    ua.global("cs.rsvd.insn");
    ua.fault(FaultKind::ReservedInstruction);
    ua.global("cs.rsvd.mode");
    ua.fault(FaultKind::ReservedAddrMode);
    ua.global("cs.rsvd.operand");
    ua.fault(FaultKind::ReservedOperand);
    ua.global("cs.priv");
    ua.fault(FaultKind::Privileged);
    ua.global("cs.div.zero");
    ua.mov(
        imm(atum_arch::exc::ArithKind::DivideByZero as u32),
        MicroReg::ExcParam,
    );
    ua.fault(FaultKind::Arithmetic);
    ua.commit(cs).expect("faults");
}

fn build_xfer(cs: &mut ControlStore) {
    // The three ATUM hook points. Deliberately minimal: the stock machine
    // pays two micro-words per data reference; everything a patch adds is
    // measurable against this baseline.
    let mut ua = MicroAsm::new();
    ua.global("xfer.read");
    ua.read(RefClass::DataRead);
    ua.ret();
    ua.global("xfer.write");
    ua.write();
    ua.ret();
    ua.global("xfer.ifetch");
    ua.op(MicroOp::Read {
        class: RefClass::IFetch,
        size: SizeSel::Fixed(DataSize::Long),
    });
    ua.ret();
    ua.commit(cs).expect("xfer");

    // Pointer indirection: longword read at MAR preserving the operand
    // size latch. Result in MDR.
    let mut ua = MicroAsm::new();
    ua.global("ptr.read");
    ua.mov(MicroReg::OSizeBytes, t(3));
    ua.set_size(DataSize::Long);
    ua.call_entry(Entry::XferRead);
    ua.op(MicroOp::SetSizeDyn(t(3)));
    ua.ret();
    ua.commit(cs).expect("ptr.read");
}

fn build_ifetch(cs: &mut ControlStore) {
    // ifetch.byte: next instruction-stream byte → MDR; advances PC without
    // flushing the prefetch buffer. Refills through Entry::XferIFetch one
    // aligned longword at a time — that longword fetch is the I-reference
    // ATUM records.
    let mut ua = MicroAsm::new();
    ua.global("ifetch.byte");
    ua.test(MicroReg::IbCnt);
    ua.jif(MicroCond::UNotZero, "serve");
    // Refill: MAR ← PC & ~3. Scratch discipline: ifetch.byte is called
    // from inside the istream gather loop, so it may only clobber the
    // junk temp (T15), MDR and its own IbData/IbCnt.
    ua.alu_l(AluOp::And, PC, imm(!3u32), MicroReg::Mar);
    ua.call_entry(Entry::XferIFetch);
    ua.mov(MicroReg::Mdr, MicroReg::IbData);
    // IbCnt ← 4 - (PC & 3); IbData >>= 8 * (PC & 3).
    ua.alu_l(AluOp::And, PC, imm(3), JUNK);
    ua.alu_l(AluOp::RSub, JUNK, imm(4), MicroReg::IbCnt);
    ua.alu_l(AluOp::Lsl, imm(3), JUNK, JUNK);
    ua.alu_l(AluOp::Lsr, JUNK, MicroReg::IbData, MicroReg::IbData);
    ua.label("serve");
    ua.alu_l(AluOp::And, MicroReg::IbData, imm(0xFF), MicroReg::Mdr);
    ua.alu_l(AluOp::Lsr, imm(8), MicroReg::IbData, MicroReg::IbData);
    ua.alu_l(AluOp::Sub, MicroReg::IbCnt, imm(1), MicroReg::IbCnt);
    ua.op(MicroOp::AdvancePc);
    ua.ret();
    ua.commit(cs).expect("ifetch.byte");

    // fetch.insn: the per-instruction entry point.
    let mut ua = MicroAsm::new();
    ua.global("fetch.insn");
    ua.call("ifetch.byte");
    ua.mov(MicroReg::Mdr, MicroReg::OpReg);
    ua.dispatch_opcode();
    ua.commit(cs).expect("fetch.insn");
}

fn build_istream(cs: &mut ControlStore) {
    // istream.n: gather T14 little-endian istream bytes into T2.
    // Clobbers T13, T14, T15, MDR.
    let mut ua = MicroAsm::new();
    ua.global("istream.n");
    ua.mov(imm(0), t(2));
    ua.mov(imm(0), t(13));
    ua.label("gather");
    ua.call("ifetch.byte");
    ua.alu_l(AluOp::Lsl, t(13), MicroReg::Mdr, JUNK);
    ua.alu_l(AluOp::Or, t(2), JUNK, t(2));
    ua.alu_l(AluOp::Add, t(13), imm(8), t(13));
    ua.alu_l(AluOp::Sub, t(14), imm(1), t(14));
    ua.jif(MicroCond::UNotZero, "gather");
    ua.ret();
    // istream.osize: gather one operand-sized value.
    ua.global("istream.osize");
    ua.mov(MicroReg::OSizeBytes, t(14));
    ua.jmp("istream.n");
    // istream.long: gather a longword.
    ua.global("istream.long");
    ua.mov(imm(4), t(14));
    ua.jmp("istream.n");
    ua.commit(cs).expect("istream");
}

fn build_stack(cs: &mut ControlStore) {
    // stack.push: push T1 (longword). Leaves the size latch at Long.
    let mut ua = MicroAsm::new();
    ua.global("stack.push");
    ua.set_size(DataSize::Long);
    ua.alu_l(AluOp::Sub, SP, imm(4), SP);
    ua.mov(SP, MicroReg::Mar);
    ua.mov(t(1), MicroReg::Mdr);
    ua.call_entry(Entry::XferWrite);
    ua.ret();
    // stack.pop: pop a longword into T0. Leaves the size latch at Long.
    ua.global("stack.pop");
    ua.set_size(DataSize::Long);
    ua.mov(SP, MicroReg::Mar);
    ua.call_entry(Entry::XferRead);
    ua.alu_l(AluOp::Add, SP, imm(4), SP);
    ua.mov(MicroReg::Mdr, t(0));
    ua.ret();
    ua.commit(cs).expect("stack");
}

fn build_exc_entry(cs: &mut ControlStore) {
    // exc.entry: the engine arrives here with ExcVec/ExcParam/ExcFlags/
    // ExcPc/ExcIpl latched. Pushes the exception frame on the kernel stack
    // (traced memory references, as on the real machine) and vectors
    // through the SCB (physical, untraced — hardware-internal).
    let mut ua = MicroAsm::new();
    ua.global("exc.entry");
    ua.mov(MicroReg::Psl, t(7));
    ua.jif(MicroCond::KernelMode, "nostack");
    // Bank stacks: USP ← SP, SP ← KSP.
    ua.op(MicroOp::WritePr {
        num: imm(PrivReg::Usp.number()),
        src: SP,
    });
    ua.op(MicroOp::ReadPr {
        num: imm(PrivReg::Ksp.number()),
        dst: SP,
    });
    ua.label("nostack");
    // New PSL: kernel mode, prv ← old cur, T/TP/CC clear, IPL kept or
    // raised to ExcIpl for interrupts.
    ua.alu_l(AluOp::Lsr, imm(24), t(7), t(9));
    ua.alu_l(AluOp::And, t(9), imm(3), t(9));
    ua.alu_l(AluOp::Lsl, imm(22), t(9), t(9));
    ua.alu_l(AluOp::And, t(7), imm(0x1F << 16), t(10));
    ua.alu_l(AluOp::And, MicroReg::ExcFlags, imm(2), JUNK);
    ua.jif(MicroCond::UZero, "keepipl");
    ua.alu_l(AluOp::Lsl, imm(16), MicroReg::ExcIpl, t(10));
    ua.label("keepipl");
    ua.alu_l(AluOp::Or, t(9), t(10), t(11));
    ua.mov(t(11), MicroReg::Psl);
    // Push PSL, PC, optional parameter.
    ua.mov(t(7), t(1));
    ua.call("stack.push");
    ua.mov(MicroReg::ExcPc, t(1));
    ua.call("stack.push");
    ua.alu_l(AluOp::And, MicroReg::ExcFlags, imm(1), JUNK);
    ua.jif(MicroCond::UZero, "noparam");
    ua.mov(MicroReg::ExcParam, t(1));
    ua.call("stack.push");
    ua.label("noparam");
    // Vector through the SCB.
    ua.op(MicroOp::ReadPr {
        num: imm(PrivReg::Scbb.number()),
        dst: t(12),
    });
    ua.alu_l(AluOp::Add, t(12), MicroReg::ExcVec, MicroReg::Mar);
    ua.op(MicroOp::PhysRead);
    ua.mov(MicroReg::Mdr, PC);
    ua.decode_next();
    ua.commit(cs).expect("exc.entry");

    // Keep the PSL constants honest: the bit positions the microcode above
    // hard-codes must match the architecture crate.
    debug_assert_eq!(Psl::VALID_MASK & (0x1F << 16), 0x1F << 16);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stock;

    #[test]
    fn plumbing_symbols_exist() {
        let cs = stock::build();
        for sym in [
            "cs.rsvd.insn",
            "cs.rsvd.mode",
            "cs.rsvd.operand",
            "cs.priv",
            "cs.div.zero",
            "xfer.read",
            "xfer.write",
            "xfer.ifetch",
            "ptr.read",
            "ifetch.byte",
            "fetch.insn",
            "istream.n",
            "istream.osize",
            "istream.long",
            "stack.push",
            "stack.pop",
            "exc.entry",
        ] {
            assert!(cs.symbol(sym).is_some(), "missing {sym}");
        }
    }

    #[test]
    fn xfer_read_is_two_words() {
        // The stock read path is [Read][Ret]; the ATUM slowdown measurement
        // depends on this baseline staying minimal, so pin it.
        let cs = stock::build();
        let a = cs.symbol("xfer.read").unwrap();
        assert!(matches!(cs.word(a), MicroOp::Read { .. }));
        assert_eq!(cs.word(a + 1), MicroOp::Ret);
    }
}
