//! Micro-operations, micro-registers, ALU operations and conditions.
//!
//! The micro-instruction set is vertical: one operation per control-store
//! word, with an implicit fall-through to the next word plus explicit
//! jumps, calls and dispatches. This matches the flavour of the VAX 8200's
//! microcode closely enough for the tracing argument to carry over, while
//! staying simple enough to execute at tens of millions of micro-ops per
//! second on the host.

use atum_arch::DataSize;
use std::fmt;

/// A micro-register — the micro-engine's datapath storage.
///
/// `Gpr(15)` is the architectural PC; writing it through [`MicroOp::Mov`]
/// or [`MicroOp::Alu`] invalidates the instruction prefetch buffer (the
/// engine enforces this), while [`MicroOp::AdvancePc`] does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroReg {
    /// Architectural general register `R0`–`R15`.
    Gpr(u8),
    /// Micro-temporary `T0`–`T15`. Conventions used by the stock microcode:
    /// `T0` = specifier result (value or address), `T1` = value to write,
    /// `T2`/`T3` = specifier scratch, `T4`–`T6` = write-back descriptor
    /// (is-register flag, register number, address), `T7`–`T15` =
    /// instruction-level saves.
    T(u8),
    /// Memory address register (input to `Read`/`Write`/`Phys*`).
    Mar,
    /// Memory data register (output of reads, input to writes).
    Mdr,
    /// The architectural PSL image.
    Psl,
    /// The current operand-specifier byte.
    Spec,
    /// The current opcode byte.
    OpReg,
    /// Dynamic register-number latch; `GprIdx` indexes through it.
    RegNum,
    /// The GPR selected by `RegNum` (both readable and writable).
    GprIdx,
    /// Operand size in bytes (1/2/4), set by [`MicroOp::SetSize`]. Read-only.
    OSizeBytes,
    /// Mask for the current operand size (0xFF/0xFFFF/0xFFFF_FFFF). Read-only.
    OSizeMask,
    /// Instruction-buffer data longword (managed by the ifetch microcode).
    IbData,
    /// Instruction-buffer valid byte count.
    IbCnt,
    /// Exception vector latch (set by the engine on faults, readable and
    /// writable by microcode).
    ExcVec,
    /// Exception parameter latch.
    ExcParam,
    /// Exception flags latch: bit 0 = has parameter, bit 1 = set IPL from
    /// `ExcIpl` (interrupts).
    ExcFlags,
    /// Patch scratch `P0`–`P7`: micro-temporaries the stock microcode never
    /// touches, reserved for control-store patches (the 8200 had spare
    /// micro-scratch registers; ATUM's patches lived in them).
    P(u8),
    /// PC value to push for the pending exception.
    ExcPc,
    /// New IPL for interrupt entry.
    ExcIpl,
    /// An immediate constant (source only).
    Imm(u32),
}

impl MicroReg {
    /// Whether this register can be a destination.
    pub fn is_writable(self) -> bool {
        !matches!(
            self,
            MicroReg::Imm(_) | MicroReg::OSizeBytes | MicroReg::OSizeMask
        )
    }
}

impl fmt::Display for MicroReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MicroReg::Gpr(n) => write!(f, "r{n}"),
            MicroReg::T(n) => write!(f, "t{n}"),
            MicroReg::Mar => f.write_str("mar"),
            MicroReg::Mdr => f.write_str("mdr"),
            MicroReg::Psl => f.write_str("psl"),
            MicroReg::Spec => f.write_str("spec"),
            MicroReg::OpReg => f.write_str("opreg"),
            MicroReg::RegNum => f.write_str("regnum"),
            MicroReg::GprIdx => f.write_str("gpr[regnum]"),
            MicroReg::OSizeBytes => f.write_str("osize"),
            MicroReg::OSizeMask => f.write_str("omask"),
            MicroReg::IbData => f.write_str("ibdata"),
            MicroReg::IbCnt => f.write_str("ibcnt"),
            MicroReg::ExcVec => f.write_str("excvec"),
            MicroReg::ExcParam => f.write_str("excparam"),
            MicroReg::ExcFlags => f.write_str("excflags"),
            MicroReg::P(n) => write!(f, "p{n}"),
            MicroReg::ExcPc => f.write_str("excpc"),
            MicroReg::ExcIpl => f.write_str("excipl"),
            MicroReg::Imm(v) => write!(f, "#{v:#x}"),
        }
    }
}

/// ALU operations. Results are masked to the operation's [`DataSize`];
/// micro-flags (Z/N/C/V at that size) latch after every ALU op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `a + b`
    Add,
    /// `a - b` (also the comparison op: flags as VAX `CMP`).
    Sub,
    /// `b - a` (reverse subtract, matches `subl3 a, b, dst`).
    RSub,
    /// `a * b` (V on signed overflow).
    Mul,
    /// `b / a` signed (micro divide-by-zero flag when `a == 0`).
    Div,
    /// `b % a` signed.
    Rem,
    /// `a & b`
    And,
    /// `a & !b` (VAX `BIC` with operands as `bicl2 mask, dst`: `dst & !mask`
    /// is computed as `And` with complement; this op is `b & !a`).
    BicR,
    /// `a | b`
    Or,
    /// `a ^ b`
    Xor,
    /// `b` shifted by signed count `a`: positive left, negative arithmetic
    /// right (the VAX `ASH` rule).
    Ash,
    /// `b >> a` logical (micro-level helper).
    Lsr,
    /// `b << a` logical (micro-level helper).
    Lsl,
    /// Pass `b` through (sets flags; `a` ignored).
    Pass,
    /// `!b`
    Not,
    /// `0 - b`
    Neg,
    /// Sign-extend low byte of `b`.
    SextB,
    /// Sign-extend low word of `b`.
    SextW,
}

/// How an ALU op updates the architectural condition codes in the PSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcEffect {
    /// PSL untouched (micro-flags still latch).
    None,
    /// N and Z from the result; V cleared; C preserved (VAX move/logical).
    Logic,
    /// N, Z, V, C all from the operation (VAX add/sub).
    Arith,
    /// Like `Arith` but C is the *borrow* convention used by VAX `CMP`
    /// (C = unsigned a < b for `Sub a-b`).
    Cmp,
    /// N and Z from the result; V and C cleared (VAX `TST`).
    Test,
}

/// Selects the size of a memory micro-transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeSel {
    /// Fixed size.
    Fixed(DataSize),
    /// The size set by the last [`MicroOp::SetSize`].
    OSize,
}

/// Classification of a memory reference, as recorded in trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefClass {
    /// Instruction-stream fetch.
    IFetch,
    /// Data read.
    DataRead,
    /// Data write.
    DataWrite,
}

/// Micro-branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroCond {
    /// Last ALU result was zero.
    UZero,
    /// Last ALU result was nonzero.
    UNotZero,
    /// Last ALU result was negative (at its size).
    UNeg,
    /// Last ALU result was non-negative.
    UPos,
    /// Last ALU op carried/borrowed.
    UCarry,
    /// Last ALU op did not carry.
    UNoCarry,
    /// Last ALU op overflowed (signed).
    UOvf,
    /// Last ALU divide had a zero divisor.
    UDivZero,
    /// Signed less-than from the last subtract (N xor V).
    USLess,
    /// Signed less-or-equal from the last subtract ((N xor V) or Z).
    USLeq,
    /// `RegNum` latch holds 15 (the PC).
    RegNumIsPc,
    /// The CPU is in user mode.
    UserMode,
    /// The CPU is in kernel mode.
    KernelMode,
    /// Architectural Z set (`beql`).
    ArchEql,
    /// Architectural Z clear (`bneq`).
    ArchNeq,
    /// Signed greater (`bgtr`): !(N | Z).
    ArchGtr,
    /// Signed less-or-equal (`bleq`): N | Z.
    ArchLeq,
    /// Signed greater-or-equal (`bgeq`): !N.
    ArchGeq,
    /// Signed less (`blss`): N.
    ArchLss,
    /// Unsigned greater (`bgtru`): !(C | Z).
    ArchGtru,
    /// Unsigned less-or-equal (`blequ`): C | Z.
    ArchLequ,
    /// V set (`bvs`).
    ArchVs,
    /// V clear (`bvc`).
    ArchVc,
    /// C set (`bcs`).
    ArchCs,
    /// C clear (`bcc`).
    ArchCc,
}

/// A micro-jump target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Absolute control-store address (what the assembler resolves to).
    Abs(u32),
    /// Indirect through the entry-point table — the patchable indirection.
    Entry(Entry),
}

/// Patchable entry points. The control store holds one address per entry;
/// `Target::Entry` jumps/calls read the slot at execution time, so
/// repointing a slot reroutes every use at once. These are the hooks ATUM
/// uses (plus opcode-dispatch patching for `ldpctx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Entry {
    /// Start of instruction processing (fetch + opcode dispatch).
    Fetch,
    /// Exception/interrupt micro-entry (engine jumps here on faults).
    ExcDispatch,
    /// Data-read transfer: `[MAR] → MDR` at `OSize`… the ATUM read hook.
    XferRead,
    /// Data-write transfer: `MDR → [MAR]`… the ATUM write hook.
    XferWrite,
    /// Instruction-stream longword fetch into the prefetch buffer… the
    /// ATUM instruction-fetch hook.
    XferIFetch,
}

impl Entry {
    /// Number of entry slots.
    pub const COUNT: usize = 5;

    /// All entries.
    pub const ALL: [Entry; Entry::COUNT] = [
        Entry::Fetch,
        Entry::ExcDispatch,
        Entry::XferRead,
        Entry::XferWrite,
        Entry::XferIFetch,
    ];

    /// The slot index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The conventional symbol name of the stock routine behind this entry.
    pub fn symbol(self) -> &'static str {
        match self {
            Entry::Fetch => "fetch.insn",
            Entry::ExcDispatch => "exc.entry",
            Entry::XferRead => "xfer.read",
            Entry::XferWrite => "xfer.write",
            Entry::XferIFetch => "xfer.ifetch",
        }
    }
}

/// The four specifier dispatch tables (one per access type). Each maps the
/// specifier high nibble (0–15) to a micro-address; they are patchable like
/// everything else in the control store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum SpecTable {
    /// Operand value is read.
    Read,
    /// Operand is written (value in `T1`).
    Write,
    /// Operand is read and later written back.
    Modify,
    /// Operand address is computed.
    Addr,
}

impl SpecTable {
    /// Number of tables.
    pub const COUNT: usize = 4;

    /// The table index.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Faults microcode can raise explicitly (memory faults come from the
/// `Read`/`Write` micro-ops instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Unassigned opcode.
    ReservedInstruction,
    /// Reserved operand value.
    ReservedOperand,
    /// Reserved addressing mode / mode invalid for access type.
    ReservedAddrMode,
    /// Privileged instruction in user mode.
    Privileged,
    /// Arithmetic trap; type code in `ExcParam`.
    Arithmetic,
    /// `chmk` trap; code in `ExcParam`.
    Chmk,
    /// `bpt` trap.
    Breakpoint,
}

/// One micro-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// `dst ← src` (full 32 bits).
    Mov {
        /// Source.
        src: MicroReg,
        /// Destination.
        dst: MicroReg,
    },
    /// ALU operation: `dst ← a op b`, masked to `size`; micro-flags latch;
    /// `cc` controls the PSL condition codes.
    Alu {
        /// Operation.
        op: AluOp,
        /// First input.
        a: MicroReg,
        /// Second input.
        b: MicroReg,
        /// Destination.
        dst: MicroReg,
        /// PSL condition-code effect.
        cc: CcEffect,
        /// Operation size.
        size: DataSize,
    },
    /// Latches the operand size (`OSizeBytes`/`OSizeMask` and
    /// [`SizeSel::OSize`] transfers).
    SetSize(DataSize),
    /// Latches the operand size from a register holding 1, 2 or 4 (used to
    /// restore the size around pointer indirections). Any other value is a
    /// machine check.
    SetSizeDyn(MicroReg),
    /// Virtual-memory read: `MDR ← [MAR]`, zero-extended. Faults abort the
    /// instruction into the exception micro-flow.
    Read {
        /// Reference classification (for tracing).
        class: RefClass,
        /// Transfer size.
        size: SizeSel,
    },
    /// Virtual-memory write: `[MAR] ← MDR` (low bytes).
    Write {
        /// Transfer size.
        size: SizeSel,
    },
    /// Physical longword read: `MDR ← phys[MAR]`. Used by microcode for
    /// SCB/PCB accesses and by the ATUM patch to manage its buffer.
    PhysRead,
    /// Physical longword write: `phys[MAR] ← MDR`. The ATUM patch's store.
    PhysWrite,
    /// Unconditional micro-jump.
    Jump(Target),
    /// Conditional micro-jump.
    JumpIf {
        /// Condition.
        cond: MicroCond,
        /// Target when true.
        target: Target,
    },
    /// Micro-subroutine call (micro-stack, depth-limited).
    Call(Target),
    /// Return from micro-subroutine.
    Ret,
    /// Jump through the opcode dispatch table on `OpReg`.
    DispatchOpcode,
    /// Jump through a specifier dispatch table on `Spec`'s high nibble.
    DispatchSpec(SpecTable),
    /// End of architectural instruction: commit side effects, honour trace
    /// traps and pending interrupts, continue at `Entry::Fetch`.
    DecodeNext,
    /// `PC ← PC + 1` without invalidating the prefetch buffer (the ifetch
    /// path's private increment).
    AdvancePc,
    /// Raise a fault/trap from microcode.
    Fault(FaultKind),
    /// `dst ← privileged register[num]`.
    ReadPr {
        /// Register number source.
        num: MicroReg,
        /// Destination.
        dst: MicroReg,
    },
    /// `privileged register[num] ← src` (with device side effects).
    WritePr {
        /// Register number source.
        num: MicroReg,
        /// Value source.
        src: MicroReg,
    },
    /// Invalidate the whole translation buffer.
    TbFlushAll,
    /// Invalidate per-process translation-buffer entries (context switch).
    TbFlushProc,
    /// Halt the processor (host regains control).
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imm_is_not_writable() {
        assert!(!MicroReg::Imm(0).is_writable());
        assert!(!MicroReg::OSizeBytes.is_writable());
        assert!(MicroReg::Gpr(3).is_writable());
        assert!(MicroReg::GprIdx.is_writable());
    }

    #[test]
    fn entry_indices_are_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for e in Entry::ALL {
            assert!(e.index() < Entry::COUNT);
            assert!(seen.insert(e.index()));
        }
    }

    #[test]
    fn entry_symbols_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for e in Entry::ALL {
            assert!(seen.insert(e.symbol()));
        }
    }

    #[test]
    fn spec_table_indices() {
        assert_eq!(SpecTable::Read.index(), 0);
        assert_eq!(SpecTable::Addr.index(), 3);
        const { assert!(SpecTable::COUNT == 4) };
    }

    #[test]
    fn micro_reg_display_nonempty() {
        for r in [
            MicroReg::Gpr(0),
            MicroReg::T(7),
            MicroReg::Mar,
            MicroReg::GprIdx,
            MicroReg::Imm(5),
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
