//! A label-based micro-assembler.
//!
//! [`MicroAsm`] collects micro-ops with symbolic jump targets and commits
//! them to a [`ControlStore`], resolving local labels and, failing that,
//! symbols already present in the store. The stock microcode and the ATUM
//! patches are both written with it.
//!
//! ```
//! use atum_ucode::{ControlStore, MicroAsm, MicroOp, MicroReg};
//!
//! let mut cs = ControlStore::new();
//! let mut ua = MicroAsm::new();
//! ua.global("spin");
//! ua.label("top");
//! ua.mov(MicroReg::Imm(1), MicroReg::T(0));
//! ua.jmp("top");
//! let addr = ua.commit(&mut cs).unwrap();
//! assert_eq!(cs.symbol("spin"), Some(addr));
//! assert_eq!(cs.word(addr), MicroOp::Mov { src: MicroReg::Imm(1), dst: MicroReg::T(0) });
//! ```

use crate::store::ControlStore;
use crate::uop::{
    AluOp, CcEffect, Entry, FaultKind, MicroCond, MicroOp, MicroReg, RefClass, SizeSel, SpecTable,
    Target,
};
use atum_arch::DataSize;
use std::collections::HashMap;
use std::fmt;

/// A pending micro-word: either final or with a symbolic target.
#[derive(Debug, Clone)]
enum Pending {
    Done(MicroOp),
    Jump(String),
    JumpIf(MicroCond, String),
    Call(String),
}

/// Error from committing a routine: an unresolved label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnresolvedLabel(pub String);

impl fmt::Display for UnresolvedLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unresolved micro-label '{}'", self.0)
    }
}

impl std::error::Error for UnresolvedLabel {}

/// The micro-assembler. See the [module docs](self) for an example.
#[derive(Debug, Default)]
pub struct MicroAsm {
    ops: Vec<Pending>,
    labels: HashMap<String, u32>,
    globals: Vec<(String, u32)>,
}

impl MicroAsm {
    /// Creates an empty routine builder.
    pub fn new() -> MicroAsm {
        MicroAsm::default()
    }

    /// Defines a local label at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate labels.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let here = self.ops.len() as u32;
        assert!(
            self.labels.insert(name.to_string(), here).is_none(),
            "duplicate micro-label {name}"
        );
        self
    }

    /// Defines a label at the current position *and* exports it as a
    /// control-store symbol on commit.
    pub fn global(&mut self, name: &str) -> &mut Self {
        self.label(name);
        self.globals.push((name.to_string(), self.ops.len() as u32));
        self
    }

    /// Appends a raw micro-op.
    pub fn op(&mut self, op: MicroOp) -> &mut Self {
        self.ops.push(Pending::Done(op));
        self
    }

    /// `dst ← src`.
    pub fn mov(&mut self, src: MicroReg, dst: MicroReg) -> &mut Self {
        self.op(MicroOp::Mov { src, dst })
    }

    /// Full ALU op.
    pub fn alu(
        &mut self,
        op: AluOp,
        a: MicroReg,
        b: MicroReg,
        dst: MicroReg,
        cc: CcEffect,
        size: DataSize,
    ) -> &mut Self {
        self.op(MicroOp::Alu {
            op,
            a,
            b,
            dst,
            cc,
            size,
        })
    }

    /// Longword ALU op without condition-code effects (the workhorse).
    pub fn alu_l(&mut self, op: AluOp, a: MicroReg, b: MicroReg, dst: MicroReg) -> &mut Self {
        self.alu(op, a, b, dst, CcEffect::None, DataSize::Long)
    }

    /// `dst ← a + b` (longword, no CC).
    pub fn add(&mut self, a: MicroReg, b: MicroReg, dst: MicroReg) -> &mut Self {
        self.alu_l(AluOp::Add, a, b, dst)
    }

    /// `dst ← b - a` is `RSub`; this is `dst ← a - b` (longword, no CC).
    pub fn sub(&mut self, a: MicroReg, b: MicroReg, dst: MicroReg) -> &mut Self {
        self.alu_l(AluOp::Sub, a, b, dst)
    }

    /// Latches micro-flags from `src` (longword `Pass`), PSL untouched.
    pub fn test(&mut self, src: MicroReg) -> &mut Self {
        self.alu_l(AluOp::Pass, MicroReg::Imm(0), src, MicroReg::T(15))
    }

    /// Sets the operand size latch.
    pub fn set_size(&mut self, size: DataSize) -> &mut Self {
        self.op(MicroOp::SetSize(size))
    }

    /// Virtual read at the latched operand size.
    pub fn read(&mut self, class: RefClass) -> &mut Self {
        self.op(MicroOp::Read {
            class,
            size: SizeSel::OSize,
        })
    }

    /// Virtual read at a fixed size.
    pub fn read_sized(&mut self, class: RefClass, size: DataSize) -> &mut Self {
        self.op(MicroOp::Read {
            class,
            size: SizeSel::Fixed(size),
        })
    }

    /// Virtual write at the latched operand size.
    pub fn write(&mut self) -> &mut Self {
        self.op(MicroOp::Write {
            size: SizeSel::OSize,
        })
    }

    /// Virtual write at a fixed size.
    pub fn write_sized(&mut self, size: DataSize) -> &mut Self {
        self.op(MicroOp::Write {
            size: SizeSel::Fixed(size),
        })
    }

    /// Jump to a local label or store symbol.
    pub fn jmp(&mut self, label: &str) -> &mut Self {
        self.ops.push(Pending::Jump(label.to_string()));
        self
    }

    /// Conditional jump to a local label or store symbol.
    pub fn jif(&mut self, cond: MicroCond, label: &str) -> &mut Self {
        self.ops.push(Pending::JumpIf(cond, label.to_string()));
        self
    }

    /// Call a local label or store symbol.
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.ops.push(Pending::Call(label.to_string()));
        self
    }

    /// Jump through an entry slot.
    pub fn jmp_entry(&mut self, e: Entry) -> &mut Self {
        self.op(MicroOp::Jump(Target::Entry(e)))
    }

    /// Call through an entry slot.
    pub fn call_entry(&mut self, e: Entry) -> &mut Self {
        self.op(MicroOp::Call(Target::Entry(e)))
    }

    /// Return from micro-subroutine.
    pub fn ret(&mut self) -> &mut Self {
        self.op(MicroOp::Ret)
    }

    /// End the architectural instruction.
    pub fn decode_next(&mut self) -> &mut Self {
        self.op(MicroOp::DecodeNext)
    }

    /// Dispatch on the opcode byte.
    pub fn dispatch_opcode(&mut self) -> &mut Self {
        self.op(MicroOp::DispatchOpcode)
    }

    /// Dispatch on the specifier mode nibble.
    pub fn dispatch_spec(&mut self, table: SpecTable) -> &mut Self {
        self.op(MicroOp::DispatchSpec(table))
    }

    /// Raise a fault.
    pub fn fault(&mut self, kind: FaultKind) -> &mut Self {
        self.op(MicroOp::Fault(kind))
    }

    /// Number of micro-ops collected so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Commits the routine to the store, resolving labels (local first,
    /// then store symbols) and exporting globals. Returns the address of
    /// the first committed word.
    ///
    /// # Errors
    ///
    /// Returns [`UnresolvedLabel`] if a referenced label is neither local
    /// nor an existing store symbol.
    pub fn commit(self, cs: &mut ControlStore) -> Result<u32, UnresolvedLabel> {
        let base = cs.len();
        let resolve = |name: &str| -> Result<Target, UnresolvedLabel> {
            if let Some(rel) = self.labels.get(name) {
                Ok(Target::Abs(base + rel))
            } else if let Some(abs) = cs.symbol(name) {
                Ok(Target::Abs(abs))
            } else {
                Err(UnresolvedLabel(name.to_string()))
            }
        };
        let mut words = Vec::with_capacity(self.ops.len());
        for p in &self.ops {
            words.push(match p {
                Pending::Done(op) => *op,
                Pending::Jump(l) => MicroOp::Jump(resolve(l)?),
                Pending::JumpIf(c, l) => MicroOp::JumpIf {
                    cond: *c,
                    target: resolve(l)?,
                },
                Pending::Call(l) => MicroOp::Call(resolve(l)?),
            });
        }
        cs.raw_append(words);
        for (name, rel) in self.globals {
            cs.define_symbol(name, base + rel);
        }
        Ok(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_labels_resolve() {
        let mut cs = ControlStore::new();
        let mut ua = MicroAsm::new();
        ua.label("start");
        ua.jmp("end");
        ua.op(MicroOp::Halt);
        ua.label("end");
        ua.ret();
        let base = ua.commit(&mut cs).unwrap();
        assert_eq!(cs.word(base), MicroOp::Jump(Target::Abs(base + 2)));
    }

    #[test]
    fn store_symbols_resolve_across_commits() {
        let mut cs = ControlStore::new();
        let mut ua = MicroAsm::new();
        ua.global("helper");
        ua.ret();
        ua.commit(&mut cs).unwrap();

        let mut ua2 = MicroAsm::new();
        ua2.call("helper");
        ua2.op(MicroOp::Halt);
        let base2 = ua2.commit(&mut cs).unwrap();
        assert_eq!(cs.word(base2), MicroOp::Call(Target::Abs(0)));
    }

    #[test]
    fn unresolved_label_errors() {
        let mut cs = ControlStore::new();
        let mut ua = MicroAsm::new();
        ua.jmp("nowhere");
        assert_eq!(
            ua.commit(&mut cs).unwrap_err(),
            UnresolvedLabel("nowhere".to_string())
        );
    }

    #[test]
    fn local_shadows_store_symbol() {
        let mut cs = ControlStore::new();
        let mut ua = MicroAsm::new();
        ua.global("dup_target");
        ua.ret();
        ua.commit(&mut cs).unwrap();

        let mut ua2 = MicroAsm::new();
        ua2.label("mine");
        ua2.jmp("mine");
        let base = ua2.commit(&mut cs).unwrap();
        assert_eq!(cs.word(base), MicroOp::Jump(Target::Abs(base)));
    }

    #[test]
    #[should_panic(expected = "duplicate micro-label")]
    fn duplicate_local_label_panics() {
        let mut ua = MicroAsm::new();
        ua.label("x");
        ua.label("x");
    }

    #[test]
    fn builder_shortcuts_produce_expected_ops() {
        let mut cs = ControlStore::new();
        let mut ua = MicroAsm::new();
        ua.mov(MicroReg::Mdr, MicroReg::T(0));
        ua.add(MicroReg::T(0), MicroReg::Imm(4), MicroReg::T(0));
        ua.set_size(DataSize::Word);
        ua.read(RefClass::DataRead);
        ua.write();
        ua.decode_next();
        let base = ua.commit(&mut cs).unwrap();
        assert!(matches!(cs.word(base), MicroOp::Mov { .. }));
        assert!(matches!(
            cs.word(base + 1),
            MicroOp::Alu { op: AluOp::Add, .. }
        ));
        assert_eq!(cs.word(base + 2), MicroOp::SetSize(DataSize::Word));
        assert!(matches!(cs.word(base + 3), MicroOp::Read { .. }));
        assert!(matches!(cs.word(base + 4), MicroOp::Write { .. }));
        assert_eq!(cs.word(base + 5), MicroOp::DecodeNext);
    }
}
