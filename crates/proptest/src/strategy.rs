//! Strategies: composable random-value generators.

use crate::rng::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A source of random values, composable with `prop_map` and friends.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Maps values through `f`, retrying while it returns `None`.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Chains into a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

const MAX_FILTER_TRIES: u32 = 1_000;

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected every candidate", self.whence);
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_FILTER_TRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map '{}' rejected every candidate", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted union of same-typed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

/// Generates any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Work in u64 space via wrapping offsets so signed ranges
                // (e.g. -8i32..8) span correctly.
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let s = (-8i32..8).generate(&mut rng);
            assert!((-8..8).contains(&s));
        }
    }

    #[test]
    fn union_weights_all_reachable() {
        let mut rng = TestRng::from_name("union");
        let u = crate::prop_oneof![1 => Just(1u8), 1 => Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let s = crate::collection::vec(0u32..1000, 1..50);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
