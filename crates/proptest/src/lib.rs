//! A self-contained, offline property-testing shim.
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the real `proptest` crate cannot be fetched. This crate
//! re-implements the (small) subset of its API that the workspace's test
//! suites use — `proptest!`, strategies over integer ranges and tuples,
//! `prop_oneof!`/`Just`/`any`, `prop_map`/`prop_filter`/`prop_filter_map`,
//! `proptest::collection::vec`, `prop::sample::Index`, and the
//! `prop_assert*` macros — with deterministic pseudo-random generation
//! seeded per test. It generates and checks; it does not shrink.
//!
//! The generator is seeded from the test's module path and name, so a
//! failing case reproduces on re-run. Set `PROPTEST_CASES` to override
//! the per-test case count globally (e.g. a CI soak).

pub mod strategy;

pub mod test_runner {
    //! Test-runner configuration and failure plumbing.

    use std::fmt;

    /// Per-test configuration (case count).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }

        /// The effective case count: `PROPTEST_CASES` overrides if set.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// A failed property case (created by `prop_assert!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// `ProptestConfig` under its prelude name.
pub use test_runner::Config as ProptestConfig;

pub mod rng {
    //! Deterministic splitmix64 generator, seeded per test.

    /// A tiny deterministic RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from a test's identifier string (stable across runs).
        pub fn from_name(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers (`Index`).

    use crate::strategy::Arbitrary;

    /// An abstract index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Resolves against a concrete length.
        pub fn index(&self, len: usize) -> usize {
            if len == 0 {
                0
            } else {
                (self.0 % len as u64) as usize
            }
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut crate::rng::TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests over generated inputs.
///
/// Supports the standard form: an optional
/// `#![proptest_config(ProptestConfig::with_cases(N))]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::rng::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.effective_cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)*
                    let __run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(e) = __run() {
                        let mut __inputs = ::std::string::String::new();
                        $(__inputs.push_str(&format!("\n  {} = {:?}", stringify!($arg), $arg));)*
                        panic!(
                            "property '{}' failed at case {}: {}\ninputs:{}",
                            stringify!($name),
                            __case,
                            e,
                            __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) so the harness can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Picks one of several strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
