//! # atum — an ATUM (ISCA 1986) reproduction
//!
//! *ATUM: A New Technique for Capturing Address Traces Using Microcode*
//! (Agarwal, Sites, Horowitz, ISCA-13, 1986) captured complete-system
//! address traces — operating system, interrupts and every process of a
//! multiprogrammed mix included — by patching the writable control store of
//! a VAX 8200 so that every memory reference also deposited a record into a
//! region of physical memory hidden from the OS.
//!
//! This workspace reproduces the technique end-to-end on a simulated
//! microcoded machine. This umbrella crate re-exports the member crates
//! under stable names; see `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`arch`] | `atum-arch` | the SVX instruction-set architecture |
//! | [`asm`] | `atum-asm` | two-pass assembler and disassembler |
//! | [`ucode`] | `atum-ucode` | micro-ops, microassembler, patchable control store, stock microcode |
//! | [`machine`] | `atum-machine` | micro-engine, memory, MMU/TLB, devices |
//! | [`core`] | `atum-core` | **the ATUM tracer**: patches, records, extraction, stitching |
//! | [`os`] | `atum-os` | the MOSS kernel and boot-image builder |
//! | [`workloads`] | `atum-workloads` | parametric benchmark generators |
//! | [`baselines`] | `atum-baselines` | T-bit tracer and architectural simulator comparators |
//! | [`cache`] | `atum-cache` | trace-driven cache and TLB simulators |
//! | [`analysis`] | `atum-analysis` | experiment runners and reporting |
//!
//! ## Quickstart
//!
//! ```
//! use atum::core::Tracer;
//! use atum::machine::Machine;
//!
//! // Assemble a user program, build a bootable system around it, attach
//! // the ATUM tracer, run, and read the trace back.
//! let image = atum::os::BootImage::builder()
//!     .user_program(
//!         "start: movl #10, r0\n\
//!          loop:  sobgtr r0, loop\n\
//!                 chmk #0\n", // syscall 0 = exit
//!     )
//!     .build()
//!     .expect("boot image");
//! let mut machine = Machine::new(image.memory_layout());
//! image.load_into(&mut machine).expect("load");
//! let tracer = Tracer::attach(&mut machine).expect("attach");
//! tracer.set_enabled(&mut machine, true);
//! machine.run_until_halt(2_000_000).expect("run");
//! let trace = tracer.extract(&machine).expect("extract");
//! assert!(trace.len() > 0);
//! let stats = trace.stats();
//! assert!(stats.kernel_refs > 0, "the OS is in the trace");
//! ```

pub use atum_analysis as analysis;
pub use atum_arch as arch;
pub use atum_asm as asm;
pub use atum_baselines as baselines;
pub use atum_cache as cache;
pub use atum_core as core;
pub use atum_machine as machine;
pub use atum_os as os;
pub use atum_ucode as ucode;
pub use atum_workloads as workloads;
