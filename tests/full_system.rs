//! Workspace-level end-to-end tests: the whole pipeline from assembly
//! source through the microcoded machine, MOSS, the ATUM tracer and the
//! cache simulators — the invariants the reproduction's claims rest on.

use atum::cache::{simulate, CacheConfig, SwitchPolicy};
use atum::core::{CaptureSession, RecordKind, Tracer};
use atum::machine::{Machine, RunExit};
use atum::os::BootImage;

fn traced_mix_run() -> (Machine, atum::core::Trace) {
    let mix = vec![
        atum::workloads::matrix("matrix", 8),
        atum::workloads::list_chase("list", 256, 3_000),
    ];
    let mut builder = BootImage::builder().quantum(15_000);
    for w in &mix {
        builder = builder.user_program(&w.source);
    }
    let image = builder.build().unwrap();
    let mut m = Machine::new(image.memory_layout());
    image.load_into(&mut m).unwrap();
    let tracer = Tracer::attach(&mut m).unwrap();
    tracer.set_pid(&mut m, 0);
    let capture = CaptureSession::new(&tracer, 50_000_000_000)
        .run(&mut m)
        .unwrap();
    assert_eq!(capture.exit, RunExit::Halted);

    // Both workloads proved their own correctness through the console.
    let out = String::from_utf8(m.take_console_output()).unwrap();
    let mut got: Vec<char> = out.chars().collect();
    let mut want: Vec<char> = mix.iter().flat_map(|w| w.expected_output.chars()).collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "workload checksums verify");

    (m, capture.trace)
}

#[test]
fn completeness_invariants_hold() {
    let (m, trace) = traced_mix_run();
    let s = trace.stats();

    // 1. The trace agrees with the hardware counters, reference for
    //    reference.
    let c = m.counts();
    assert_eq!(s.ifetch, c.ifetch);
    assert_eq!(s.reads, c.data_reads);
    assert_eq!(s.writes, c.data_writes);

    // 2. OS activity is present and attributed.
    assert!(s.kernel_refs > 0);
    assert!(s.ctx_switches >= 2, "both processes were dispatched");
    assert!(s.interrupts > 0);
    assert!(s.refs_by_pid.contains_key(&1));
    assert!(s.refs_by_pid.contains_key(&2));

    // 3. Every interrupt marker carries a valid SCB vector.
    for r in trace.iter().filter(|r| r.kind() == RecordKind::Interrupt) {
        assert!(r.addr < 512, "vector {:#x} inside the SCB page", r.addr);
        assert_eq!(r.addr % 4, 0);
    }

    // 4. Context-switch markers alternate pids plausibly.
    let pids: Vec<u8> = trace
        .iter()
        .filter(|r| r.kind() == RecordKind::CtxSwitch)
        .map(|r| r.pid())
        .collect();
    assert!(pids.iter().all(|&p| (1..=2).contains(&p)));
}

#[test]
fn archival_encoding_preserves_cache_results() {
    let (_, trace) = traced_mix_run();
    let bytes = atum::core::encode_trace(&trace);
    let decoded = atum::core::decode_trace(&bytes).unwrap();

    for policy in [
        SwitchPolicy::Ignore,
        SwitchPolicy::Flush,
        SwitchPolicy::PidTag,
    ] {
        let cfg = CacheConfig::builder()
            .size(8 << 10)
            .block(16)
            .assoc(2)
            .switch_policy(policy)
            .build()
            .unwrap();
        let a = simulate(&trace, &cfg);
        let b = simulate(&decoded, &cfg);
        assert_eq!(a, b, "cache results identical through the archive format");
    }
}

#[test]
fn os_inclusion_changes_cache_results() {
    let (_, trace) = traced_mix_run();
    let user = trace.user_only();
    let cfg = CacheConfig::builder()
        .size(4 << 10)
        .block(16)
        .assoc(1)
        .build()
        .unwrap();
    let full = simulate(&trace, &cfg);
    let user_only = simulate(&user, &cfg);
    assert!(full.accesses > user_only.accesses);
    assert!(
        full.misses > user_only.misses,
        "the OS adds misses, not just accesses"
    );
}

#[test]
fn flush_vs_tag_ordering_holds_on_real_traces() {
    let (_, trace) = traced_mix_run();
    let base = CacheConfig::builder()
        .size(16 << 10)
        .block(16)
        .assoc(2)
        .build()
        .unwrap();
    let flush = simulate(&trace, &base.with_switch(SwitchPolicy::Flush));
    let tag = simulate(&trace, &base.with_switch(SwitchPolicy::PidTag));
    assert!(
        flush.miss_rate() > tag.miss_rate(),
        "purging must cost more than tagging: {} vs {}",
        flush.miss_rate(),
        tag.miss_rate()
    );
}

#[test]
fn detach_stops_capture_and_restores_behaviour() {
    let image = BootImage::builder()
        .user_program("start: movl #200, r6\nloop: incl counter\n sobgtr r6, loop\n chmk #0\ncounter: .long 0")
        .build()
        .unwrap();
    let mut m = Machine::new(image.memory_layout());
    image.load_into(&mut m).unwrap();
    let tracer = Tracer::attach(&mut m).unwrap();
    tracer.set_enabled(&mut m, true);
    // Run a little, detach, run to completion.
    m.run(200_000);
    let mid = tracer.pending_records(&m);
    assert!(mid > 0);
    let tracer2 = {
        tracer.detach(&mut m);
        // Records stay in the buffer, untouched, after detach.
        m.run(50_000_000)
    };
    assert_eq!(tracer2, RunExit::Halted);
}

#[test]
fn tiny_buffer_capture_equals_big_buffer_capture() {
    let program =
        "start: movl #300, r6\nloop: incl counter\n sobgtr r6, loop\n chmk #0\ncounter: .long 0";
    let capture_with = |buf: Option<u32>| {
        let image = BootImage::builder().user_program(program).build().unwrap();
        let mut m = Machine::new(image.memory_layout());
        image.load_into(&mut m).unwrap();
        let base = m.memory().layout().reserved_base();
        let tracer = match buf {
            Some(len) => Tracer::attach_region(&mut m, base, len).unwrap(),
            None => Tracer::attach(&mut m).unwrap(),
        };
        tracer.set_pid(&mut m, 0);
        let cap = CaptureSession::new(&tracer, 50_000_000_000)
            .run(&mut m)
            .unwrap();
        assert_eq!(cap.exit, RunExit::Halted);
        cap
    };
    let big = capture_with(None);
    let small = capture_with(Some(4096));
    assert!(small.drains > 0, "tiny buffer forced drains");
    let big_refs: Vec<_> = big.trace.refs().collect();
    let small_refs: Vec<_> = small.trace.refs().collect();
    assert_eq!(big_refs, small_refs, "stitching is lossless end to end");
}
