//! Buffer-full microtrap → extraction → `core::stitch`, end to end, under
//! a real multi-process OS mix (E1's methodology).
//!
//! A small reserved region forces the patch microcode to halt with the
//! FULL flag many times mid-workload; the host drains and resumes each
//! time, and [`CaptureSession`] stitches the samples. Three claims are
//! pinned down here:
//!
//! 1. Stitching is lossless: with asynchronous preemption quiesced, the
//!    stitched trace carries exactly the records of a continuous
//!    capture, so downstream cache results are bit-identical.
//! 2. Under a preemptive quantum the drain stalls dilate time — timer
//!    interrupts land a few instructions earlier or later, exactly the
//!    perturbation the paper accepts — but the distortion stays tiny.
//! 3. The drained segments are only equivalent *as a whole*: replaying
//!    each against a cold cache (the cold-start window E1 quantifies)
//!    can only overstate misses relative to the stitched trace.

use atum::cache::{simulate, CacheConfig, SwitchPolicy};
use atum::core::{Capture, CaptureSession, RecordKind, Trace, Tracer};
use atum::machine::{Machine, RunExit};
use atum::os::BootImage;

/// Captures the standard two-process mix with the given reserved-buffer
/// length (`None` = the full default region) and scheduler quantum.
fn capture_mix(buf_len: Option<u32>, quantum: u32) -> Capture {
    let mix = vec![
        atum::workloads::matrix("matrix", 8),
        atum::workloads::list_chase("list", 256, 3_000),
    ];
    let mut builder = BootImage::builder().quantum(quantum);
    for w in &mix {
        builder = builder.user_program(&w.source);
    }
    let image = builder.build().unwrap();
    let mut m = Machine::new(image.memory_layout());
    image.load_into(&mut m).unwrap();
    let base = m.memory().layout().reserved_base();
    let tracer = match buf_len {
        Some(len) => Tracer::attach_region(&mut m, base, len).unwrap(),
        None => Tracer::attach(&mut m).unwrap(),
    };
    tracer.set_pid(&mut m, 0);
    let capture = CaptureSession::new(&tracer, 50_000_000_000)
        .run(&mut m)
        .unwrap();
    assert_eq!(capture.exit, RunExit::Halted);
    capture
}

/// A quantum no process outlives: context switches still happen at
/// process exit, but no timer interrupt preempts a running process, so
/// drain stalls cannot shift the interleaving.
const NO_PREEMPT: u32 = 50_000_000;
/// The preemptive quantum the analysis suite uses for this mix.
const PREEMPT: u32 = 15_000;

fn cfg_16k_2way() -> CacheConfig {
    CacheConfig::builder()
        .size(16 << 10)
        .block(16)
        .assoc(2)
        .switch_policy(SwitchPolicy::PidTag)
        .build()
        .unwrap()
}

#[test]
fn stitched_os_mix_equals_continuous_capture() {
    let continuous = capture_mix(None, NO_PREEMPT);
    let stitched = capture_mix(Some(4096), NO_PREEMPT);

    // The tiny buffer really did fill mid-workload, repeatedly, and every
    // drain left one segment mark behind.
    assert!(
        stitched.drains > 2,
        "expected many drains, got {}",
        stitched.drains
    );
    assert_eq!(continuous.drains, 0, "default region holds the whole mix");
    let marks = stitched
        .trace
        .iter()
        .filter(|r| r.kind() == RecordKind::SegmentMark)
        .count();
    assert_eq!(marks as u32, stitched.drains);
    assert!(stitched.trace.segments() > stitched.drains as usize);

    // The OS is genuinely in the picture even without preemption.
    let stats = stitched.trace.stats();
    assert!(stats.kernel_refs > 0);
    assert!(stats.ctx_switches >= 2, "each process got dispatched");

    // Modulo those marks, the stitched trace is the continuous one —
    // kernel refs, context switches and interrupt markers included.
    let strip = |t: &Trace| -> Vec<_> {
        t.iter()
            .copied()
            .filter(|r| r.kind() != RecordKind::SegmentMark)
            .collect()
    };
    assert_eq!(strip(&stitched.trace), strip(&continuous.trace));

    // And so is everything downstream of it.
    let cfg = cfg_16k_2way();
    assert_eq!(
        simulate(&stitched.trace, &cfg),
        simulate(&continuous.trace, &cfg),
    );
}

#[test]
fn drain_dilation_under_preemption_is_tiny() {
    let continuous = capture_mix(None, PREEMPT);
    let stitched = capture_mix(Some(4096), PREEMPT);
    assert!(stitched.drains > 2);

    // Drain stalls shift where timer interrupts land, so the interleaved
    // streams are not identical — that is the dilation the paper
    // documents, and it must stay in the noise: reference counts within
    // a fraction of a percent, miss rates within a tenth of a point.
    let (a, b) = (continuous.trace.ref_count(), stitched.trace.ref_count());
    let drift = a.abs_diff(b) as f64 / a as f64;
    assert!(drift < 0.005, "ref-count drift {drift:.4} ({a} vs {b})");

    let cfg = cfg_16k_2way();
    let (ma, mb) = (
        simulate(&continuous.trace, &cfg).miss_rate(),
        simulate(&stitched.trace, &cfg).miss_rate(),
    );
    assert!(
        (ma - mb).abs() < 0.001,
        "miss-rate drift {:.4}pp",
        100.0 * (ma - mb).abs()
    );
}

#[test]
fn per_segment_replay_shows_cold_start_bias() {
    let stitched = capture_mix(Some(4096), PREEMPT);
    assert!(stitched.drains > 2);

    let cfg = cfg_16k_2way();
    let whole = simulate(&stitched.trace, &cfg);

    // Replay each drained sample against a cold cache, as if the segments
    // had never been stitched.
    let mut segments: Vec<Trace> = vec![Trace::new()];
    for r in stitched.trace.iter() {
        if r.kind() == RecordKind::SegmentMark {
            segments.push(Trace::new());
        } else {
            segments.last_mut().unwrap().push(*r);
        }
    }
    let (mut hits, mut misses) = (0u64, 0u64);
    for seg in &segments {
        let s = simulate(seg, &cfg);
        hits += s.hits;
        misses += s.misses;
    }

    // Same references either way; per-segment replay can only lose hits
    // to cold starts — the bias E1 measures, and the reason the paper
    // cares about long continuous samples.
    assert_eq!(hits + misses, whole.hits + whole.misses);
    assert!(
        misses > whole.misses,
        "cold segment starts must cost extra misses ({} vs {})",
        misses,
        whole.misses
    );
}
